//! Layer 4: forward dataflow over the per-function CFG (`lint --flow`).
//!
//! Two analysis families run over every classified file:
//!
//! * **Unit-dimension tracking** — infers the physical dimension of each
//!   local (length, time, speed, acceleration, angle, dimensionless) from
//!   `iprism-units` newtype constructors, `.get()`/`.0` escapes and
//!   unit-suffixed literal bindings, propagates it through arithmetic, and
//!   flags mixed-dimension `+`/`-`, raw-f64 round-trips re-entering a
//!   constructor with the wrong dimension, and trigonometry bypassing
//!   `Radians`.
//! * **Parallel determinism** — finds closures handed to the `shims/rayon`
//!   entry points (plus `par_iter`-style chains) and flags order-sensitive
//!   accumulation into captured state, shared-mutable access (locks,
//!   `RefCell`, atomics) inside parallel closures, and reductions over
//!   unordered hash-collection iteration.
//!
//! The engine is a classic worklist fixed point: facts form a join
//! semilattice, `transfer` pushes a node's input fact through its tokens,
//! and joins happen where CFG edges meet. Analyses scan *every* token of a
//! node, so the graceful degradation in [`super::cfg`] only costs join
//! precision, never coverage. Hand-rolled, zero dependencies, like every
//! other layer of the stack.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;
use std::path::Path;

use crate::mask::{self, MaskedFile};

use super::cfg::{self, matching_brace, Cfg, CfgNode, NodeKind};
use super::lexer::{self, Kind, Token};
use super::rules::{matching_close, skip_generics};
use super::{allow_lines, allowed, parse_allow_names, AstDiagnostic, AstRule, FLOW_RULES};

/// One dataflow analysis: a join-semilattice fact plus a transfer function.
pub trait Analysis {
    /// The lattice element attached to each CFG edge.
    type Fact: Clone + PartialEq;
    /// The fact entering the function (seeded from the parameter list).
    fn boundary(&self) -> Self::Fact;
    /// The lattice join, applied where CFG edges meet.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;
    /// Pushes `fact` through one node, reporting violations into `sink`.
    fn transfer(
        &self,
        tokens: &[Token],
        node: &CfgNode,
        fact: &Self::Fact,
        sink: &mut Vec<AstDiagnostic>,
    ) -> Self::Fact;
}

/// Runs `analysis` to a fixed point over `cfg`, then replays each reachable
/// node once with its final input fact to collect diagnostics into `out`.
pub fn run_to_fixpoint<A: Analysis>(
    analysis: &A,
    tokens: &[Token],
    cfg: &Cfg,
    out: &mut Vec<AstDiagnostic>,
) {
    let n = cfg.nodes.len();
    let Some(entry) = cfg.entry else { return };
    let mut input: Vec<Option<A::Fact>> = vec![None; n];
    input[entry] = Some(analysis.boundary());
    let mut queued = vec![false; n];
    let mut work = VecDeque::new();
    work.push_back(entry);
    queued[entry] = true;
    let mut scratch = Vec::new();
    // Defensive budget: the lattices here have finite height, but a budget
    // keeps a surprise (e.g. a non-monotone transfer bug) from hanging CI.
    let mut budget = 64usize.saturating_mul(n.max(1));
    while let Some(v) = work.pop_front() {
        queued[v] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(fact) = input[v].clone() else {
            continue;
        };
        scratch.clear();
        let out_v = analysis.transfer(tokens, &cfg.nodes[v], &fact, &mut scratch);
        for &s in &cfg.nodes[v].succs {
            let joined = match &input[s] {
                Some(cur) => analysis.join(cur, &out_v),
                None => out_v.clone(),
            };
            if input[s].as_ref() != Some(&joined) {
                input[s] = Some(joined);
                if !queued[s] {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
    }
    for (idx, node) in cfg.nodes.iter().enumerate() {
        if let Some(fact) = &input[idx] {
            let _ = analysis.transfer(tokens, node, fact, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Unit-dimension tracking
// ---------------------------------------------------------------------------

/// A physical dimension in the unit lattice.
///
/// `Bot` is the polymorphic bottom (a bare numeric literal adapts to any
/// dimension); `Unknown` is top (gave up — never flagged against).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Dim {
    /// A bare literal: adapts to whatever it is combined with.
    Bot,
    /// Metres.
    Length,
    /// Seconds.
    Time,
    /// Metres per second.
    Speed,
    /// Metres per second squared.
    Accel,
    /// An angle tracked in radians.
    Radians,
    /// An angle tracked in degrees (only ever inferred, never a newtype).
    Degrees,
    /// Dimensionless (a ratio of like dimensions, or a trig result).
    Ratio,
    /// Top: no information.
    Unknown,
}

impl Dim {
    /// True for dimensions concrete enough to flag against.
    #[must_use]
    pub fn known(self) -> bool {
        !matches!(self, Dim::Bot | Dim::Unknown)
    }

    /// Human-readable label for diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dim::Length => "length (m)",
            Dim::Time => "time (s)",
            Dim::Speed => "speed (m/s)",
            Dim::Accel => "acceleration (m/s^2)",
            Dim::Radians => "angle (rad)",
            Dim::Degrees => "angle (deg)",
            Dim::Ratio => "dimensionless",
            Dim::Bot | Dim::Unknown => "unknown",
        }
    }

    fn join(a: Dim, b: Dim) -> Dim {
        if a == b {
            a
        } else if a == Dim::Bot {
            b
        } else if b == Dim::Bot {
            a
        } else {
            Dim::Unknown
        }
    }

    fn mul(a: Dim, b: Dim) -> Dim {
        match (a, b) {
            (Dim::Bot, x) | (x, Dim::Bot) => x,
            (Dim::Ratio, x) | (x, Dim::Ratio) => x,
            (Dim::Speed, Dim::Time) | (Dim::Time, Dim::Speed) => Dim::Length,
            (Dim::Accel, Dim::Time) | (Dim::Time, Dim::Accel) => Dim::Speed,
            _ => Dim::Unknown,
        }
    }

    fn div(a: Dim, b: Dim) -> Dim {
        match (a, b) {
            (x, Dim::Bot) | (x, Dim::Ratio) => x,
            (Dim::Bot, _) => Dim::Unknown,
            (x, y) if x == y && x.known() => Dim::Ratio,
            (Dim::Length, Dim::Time) => Dim::Speed,
            (Dim::Length, Dim::Speed) => Dim::Time,
            (Dim::Speed, Dim::Time) => Dim::Accel,
            (Dim::Speed, Dim::Accel) => Dim::Time,
            _ => Dim::Unknown,
        }
    }
}

/// The `iprism-units` newtypes and the dimensions they carry.
const UNIT_TYPES: [(&str, Dim); 5] = [
    ("Meters", Dim::Length),
    ("Seconds", Dim::Time),
    ("MetersPerSecond", Dim::Speed),
    ("MetersPerSecondSquared", Dim::Accel),
    ("Radians", Dim::Radians),
];

fn unit_dim(name: &str) -> Option<Dim> {
    UNIT_TYPES.iter().find(|(n, _)| *n == name).map(|&(_, d)| d)
}

/// Dimension implied by the last `_`-separated segment of a binding name
/// (`dt_s`, `gap_m`, `heading_rad`, ...). Applied only to pure-literal
/// `let` bindings with at least two name segments, so short names like
/// `m` or `s` never pick up a dimension by accident.
fn suffix_dim(name: &str) -> Option<Dim> {
    let mut segs = name.split('_').filter(|s| !s.is_empty());
    let first = segs.next()?;
    let last = segs.next_back().unwrap_or(first);
    if last == first {
        // Single-segment names carry no suffix convention.
        return None;
    }
    match last {
        "m" | "meters" | "km" => Some(Dim::Length),
        "s" | "sec" | "secs" | "seconds" | "ms" => Some(Dim::Time),
        "mps" => Some(Dim::Speed),
        "mps2" => Some(Dim::Accel),
        "rad" | "rads" | "radians" => Some(Dim::Radians),
        "deg" | "degs" | "degrees" => Some(Dim::Degrees),
        _ => None,
    }
}

type Env = BTreeMap<String, Dim>;

/// Unit-dimension tracking for one function.
pub struct UnitAnalysis<'a> {
    path: &'a str,
    params: &'a [cfg::Param],
}

impl Analysis for UnitAnalysis<'_> {
    type Fact = Env;

    fn boundary(&self) -> Env {
        let mut env = Env::new();
        for p in self.params {
            let dim =
                p.ty.iter()
                    .filter(|t| t.kind == Kind::Ident)
                    .find_map(|t| unit_dim(&t.text));
            if let Some(dim) = dim {
                env.insert(p.name.clone(), dim);
            }
        }
        env
    }

    fn join(&self, a: &Env, b: &Env) -> Env {
        let mut out = a.clone();
        for (k, &vb) in b {
            let va = out.get(k).copied().unwrap_or(Dim::Bot);
            out.insert(k.clone(), Dim::join(va, vb));
        }
        out
    }

    fn transfer(
        &self,
        tokens: &[Token],
        node: &CfgNode,
        fact: &Env,
        sink: &mut Vec<AstDiagnostic>,
    ) -> Env {
        let toks = &tokens[node.tokens.clone()];
        let mut env = fact.clone();
        match node.kind {
            NodeKind::Stmt => unit_stmt(self.path, toks, &mut env, sink),
            NodeKind::Cond | NodeKind::While => {
                // `if let` / `while let`: bind the pattern, evaluate the
                // scrutinee; a plain condition just gets scanned.
                if let Some(let_at) = toks.iter().position(|t| t.is_ident("let")) {
                    if let Some(eq) = find_standalone_eq(toks, let_at + 1) {
                        bind_unknown(&toks[let_at + 1..eq], &mut env);
                        eval_all(self.path, &toks[eq + 1..], &env, sink);
                        return env;
                    }
                }
                eval_all(self.path, &toks[1.min(toks.len())..], &env, sink);
            }
            NodeKind::ForHeader => {
                // `for <pat> in <iter>`: bind the pattern, scan the iterator.
                let in_at = toks.iter().position(|t| t.is_ident("in"));
                if let Some(in_at) = in_at {
                    bind_unknown(&toks[1.min(toks.len())..in_at], &mut env);
                    eval_all(self.path, &toks[in_at + 1..], &env, sink);
                } else {
                    eval_all(self.path, toks, &env, sink);
                }
            }
            NodeKind::MatchHead => {
                eval_all(self.path, &toks[1.min(toks.len())..], &env, sink);
            }
            NodeKind::ArmPattern => {
                // Pattern bindings shadow outer locals; the guard (after a
                // top-level `if`) is an expression and gets scanned.
                let guard = toks.iter().position(|t| t.is_ident("if"));
                let pat_end = guard.unwrap_or(toks.len());
                bind_unknown(&toks[..pat_end], &mut env);
                if let Some(g) = guard {
                    eval_all(self.path, &toks[g + 1..], &env, sink);
                }
            }
        }
        env
    }
}

/// Binds every plausible pattern identifier (lowercase-start, non-keyword)
/// to `Unknown`: shadowing must clobber any outer dimension.
fn bind_unknown(toks: &[Token], env: &mut Env) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Ident || is_keyword(&t.text) {
            continue;
        }
        if !t
            .text
            .starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
        {
            continue;
        }
        // Skip path segments (`m::f`) and struct-field names (`x:` in
        // `Point { x: px }` binds `px`, not `x`).
        if toks.get(i + 1).is_some_and(|n| n.is_punct(':')) && !t.text.is_empty() {
            continue;
        }
        if i > 0 && toks[i - 1].is_punct(':') {
            // Could be a path tail; binding it Unknown is still safe.
        }
        env.insert(t.text.clone(), Dim::Unknown);
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "let"
            | "in"
            | "fn"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "mut"
            | "ref"
            | "self"
            | "Self"
            | "as"
            | "unsafe"
            | "pub"
            | "crate"
            | "super"
            | "where"
            | "impl"
            | "dyn"
            | "true"
            | "false"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "use"
            | "const"
            | "static"
            | "async"
            | "await"
    )
}

/// Two tokens are adjacent in the source (multi-char operators lex as
/// adjacent single-char puncts).
fn adjacent(a: &Token, b: &Token) -> bool {
    a.line == b.line && a.col + a.text.len() == b.col
}

/// Finds the `=` of a `let`/assignment at bracket depth 0 from `from`,
/// skipping `==`, `!=`, `<=`, `>=`, `=>` and `+=`-style compound forms.
fn find_standalone_eq(toks: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in from..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "=" if depth == 0 => {
                let next_glued = toks
                    .get(i + 1)
                    .is_some_and(|n| (n.is_punct('=') || n.is_punct('>')) && adjacent(t, n));
                let prev_glued = i > from
                    && toks[i - 1].kind == Kind::Punct
                    && toks[i - 1].text.len() == 1
                    && "=!<>+-*/%&|^".contains(&toks[i - 1].text)
                    && adjacent(&toks[i - 1], t);
                if !next_glued && !prev_glued {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Transfer for an ordinary statement node: `let` bindings, simple
/// (compound) assignments, or a plain expression scan.
fn unit_stmt(path: &str, toks: &[Token], env: &mut Env, sink: &mut Vec<AstDiagnostic>) {
    let mut i = 0;
    // Skip leading attributes.
    while toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct('[') {
                depth += 1;
            } else if toks[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = (j + 1).min(toks.len());
    }
    let toks = &toks[i..];
    let end = toks
        .len()
        .saturating_sub(usize::from(toks.last().is_some_and(|t| t.is_punct(';'))));
    let toks = &toks[..end];
    if toks.is_empty() {
        return;
    }
    if toks[0].is_ident("let") {
        let mut j = 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let simple = toks.get(j).is_some_and(|t| {
            t.kind == Kind::Ident
                && !is_keyword(&t.text)
                && toks
                    .get(j + 1)
                    .is_none_or(|n| n.is_punct(':') || n.is_punct('='))
        });
        let eq = find_standalone_eq(toks, j);
        if simple {
            let name = toks[j].text.clone();
            let ann_end = eq.unwrap_or(toks.len());
            let ann_dim = toks[j + 1..ann_end]
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .find_map(|t| unit_dim(&t.text));
            let rhs = eq.map(|e| &toks[e + 1..]);
            let rhs_dim = rhs.map(|r| eval_all(path, r, env, sink));
            let dim = match (ann_dim, rhs_dim) {
                (Some(a), _) => a,
                (None, Some(Dim::Bot)) => {
                    // A pure literal: a unit-suffixed name fixes the
                    // dimension; otherwise stay polymorphic.
                    let pure_literal = rhs.is_some_and(|r| {
                        let r: Vec<_> = r
                            .iter()
                            .filter(|t| !(t.is_punct('-') || t.is_punct('(') || t.is_punct(')')))
                            .collect();
                        r.len() == 1 && matches!(r[0].kind, Kind::Float | Kind::Int)
                    });
                    if pure_literal {
                        suffix_dim(&name).unwrap_or(Dim::Bot)
                    } else {
                        Dim::Bot
                    }
                }
                (None, Some(d)) => d,
                (None, None) => Dim::Unknown,
            };
            env.insert(name, dim);
        } else {
            // Destructuring: bind every pattern ident, then scan the rhs.
            let pat_end = eq.unwrap_or(toks.len());
            bind_unknown(&toks[1..pat_end], env);
            if let Some(eq) = eq {
                eval_all(path, &toks[eq + 1..], env, sink);
            }
        }
        return;
    }
    // Simple (compound) assignment to a plain local.
    if toks[0].kind == Kind::Ident && !is_keyword(&toks[0].text) {
        let name = &toks[0].text;
        if toks.len() > 1 && toks[1].is_punct('=') && find_standalone_eq(toks, 1) == Some(1) {
            let rhs_dim = eval_all(path, &toks[2..], env, sink);
            env.insert(name.clone(), rhs_dim);
            return;
        }
        let compound = toks.len() > 2
            && toks[1].kind == Kind::Punct
            && toks[1].text.len() == 1
            && "+-*/".contains(&toks[1].text)
            && toks[2].is_punct('=')
            && adjacent(&toks[1], &toks[2]);
        if compound {
            let lhs = env.get(name).copied().unwrap_or(Dim::Unknown);
            let rhs = eval_all(path, &toks[3..], env, sink);
            match toks[1].text.as_str() {
                "+" | "-" if lhs.known() && rhs.known() && lhs != rhs => {
                    sink.push(mixed_dim(path, &toks[1], lhs, rhs));
                }
                "*" => {
                    env.insert(name.clone(), Dim::mul(lhs, rhs));
                }
                "/" => {
                    env.insert(name.clone(), Dim::div(lhs, rhs));
                }
                _ => {}
            }
            return;
        }
    }
    eval_all(path, toks, env, sink);
}

fn mixed_dim(path: &str, at: &Token, lhs: Dim, rhs: Dim) -> AstDiagnostic {
    AstDiagnostic {
        path: path.to_string(),
        line: at.line,
        col: at.col,
        rule: AstRule::UnitMixedDim,
        message: format!(
            "mixed-dimension arithmetic: {} {} {}; convert through the iprism-units newtypes first",
            lhs.label(),
            at.text,
            rhs.label()
        ),
    }
}

/// Scans a token region as a sequence of expressions, returning the
/// dimension of the *first* expression (the rhs value of a binding) while
/// reporting violations anywhere in the region.
fn eval_all(path: &str, toks: &[Token], env: &Env, sink: &mut Vec<AstDiagnostic>) -> Dim {
    let mut ev = Eval {
        toks,
        pos: 0,
        env,
        path,
        sink,
        depth: 0,
    };
    let mut first = None;
    while ev.pos < ev.toks.len() {
        let before = ev.pos;
        let d = ev.expr();
        if first.is_none() {
            first = Some(d);
        }
        if ev.pos == before {
            ev.pos += 1;
        }
    }
    first.unwrap_or(Dim::Unknown)
}

/// A recursive-descent expression scanner with dimension inference. It is
/// deliberately forgiving: anything it cannot shape evaluates to
/// [`Dim::Unknown`] and the outer loop in [`eval_all`] guarantees progress.
struct Eval<'a, 'b> {
    toks: &'a [Token],
    pos: usize,
    env: &'a Env,
    path: &'a str,
    sink: &'b mut Vec<AstDiagnostic>,
    depth: u32,
}

impl Eval<'_, '_> {
    fn report(&mut self, at: &Token, rule: AstRule, message: String) {
        self.sink.push(AstDiagnostic {
            path: self.path.to_string(),
            line: at.line,
            col: at.col,
            rule,
            message,
        });
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    /// Is the punct at `pos` glued to the punct at `pos + 1`?
    fn glued(&self, c: char) -> bool {
        let (Some(a), Some(b)) = (self.toks.get(self.pos), self.toks.get(self.pos + 1)) else {
            return false;
        };
        b.is_punct(c) && adjacent(a, b)
    }

    fn expr(&mut self) -> Dim {
        self.depth += 1;
        if self.depth > 48 {
            self.depth -= 1;
            self.pos += 1;
            return Dim::Unknown;
        }
        let mut dim = self.add_level();
        while let Some(t) = self.peek() {
            if t.kind != Kind::Punct {
                break;
            }
            match t.text.as_str() {
                "=" if self.glued('=') => self.pos += 2,
                "!" if self.glued('=') => self.pos += 2,
                "<" | ">" => {
                    let extra = usize::from(self.glued('=') || self.glued('<') || self.glued('>'));
                    self.pos += 1 + extra;
                }
                "&" if self.glued('&') => self.pos += 2,
                "|" if self.glued('|') => self.pos += 2,
                "&" | "|" | "^" => self.pos += 1,
                "." if self.glued('.') => {
                    self.pos += 2;
                    if self.peek().is_some_and(|t| t.is_punct('=')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
            let before = self.pos;
            self.add_level();
            if self.pos == before {
                break;
            }
            dim = Dim::Unknown;
        }
        self.depth -= 1;
        dim
    }

    fn add_level(&mut self) -> Dim {
        let mut dim = self.mul_level();
        while let Some(t) = self.peek() {
            if !(t.is_punct('+') || t.is_punct('-')) {
                break;
            }
            // `->` ends the expression (closure/fn return type position).
            if t.is_punct('-')
                && self
                    .toks
                    .get(self.pos + 1)
                    .is_some_and(|n| n.is_punct('>') && adjacent(t, n))
            {
                break;
            }
            let op = self.pos;
            let compound = self.glued('=');
            self.pos += 1 + usize::from(compound);
            let before = self.pos;
            let rhs = self.mul_level();
            if self.pos == before {
                self.pos = op;
                break;
            }
            let lhs = dim;
            if lhs.known() && rhs.known() && lhs != rhs {
                let d = mixed_dim(self.path, &self.toks[op], lhs, rhs);
                self.sink.push(d);
            }
            dim = if compound {
                Dim::Unknown
            } else if lhs == rhs {
                lhs
            } else if lhs == Dim::Bot {
                rhs
            } else if rhs == Dim::Bot {
                lhs
            } else {
                Dim::Unknown
            };
        }
        dim
    }

    fn mul_level(&mut self) -> Dim {
        let mut dim = self.unary();
        while let Some(t) = self.peek() {
            let op = match t.text.as_str() {
                "*" | "/" | "%" if t.kind == Kind::Punct => t.text.clone(),
                _ => break,
            };
            let at = self.pos;
            let compound = self.glued('=');
            self.pos += 1 + usize::from(compound);
            let before = self.pos;
            let rhs = self.unary();
            if self.pos == before {
                self.pos = at;
                break;
            }
            dim = if compound {
                Dim::Unknown
            } else {
                match op.as_str() {
                    "*" => Dim::mul(dim, rhs),
                    "/" => Dim::div(dim, rhs),
                    _ => {
                        if dim == rhs {
                            dim
                        } else {
                            Dim::Unknown
                        }
                    }
                }
            };
        }
        dim
    }

    fn unary(&mut self) -> Dim {
        let mut saw_not = false;
        while let Some(t) = self.peek() {
            if t.is_punct('-') || t.is_punct('*') || t.is_punct('&') {
                self.pos += 1;
            } else if t.is_punct('!') && !self.glued('=') {
                saw_not = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let d = self.postfix();
        if saw_not {
            Dim::Unknown
        } else {
            d
        }
    }

    fn postfix(&mut self) -> Dim {
        let mut dim = self.primary();
        while let Some(t) = self.peek() {
            if t.is_punct('.') && !self.glued('.') {
                let Some(n) = self.toks.get(self.pos + 1) else {
                    break;
                };
                match n.kind {
                    Kind::Int | Kind::Float => {
                        // Tuple/newtype field: `.0` keeps the dimension.
                        dim = if n.text == "0" { dim } else { Dim::Unknown };
                        self.pos += 2;
                    }
                    Kind::Ident => {
                        // Skip an optional turbofish between name and `(`.
                        let mut open = self.pos + 2;
                        if self.toks.get(open).is_some_and(|t| t.is_punct(':'))
                            && self.toks.get(open + 1).is_some_and(|t| t.is_punct(':'))
                            && self.toks.get(open + 2).is_some_and(|t| t.is_punct('<'))
                        {
                            match skip_generics(self.toks, open + 2) {
                                Some(after) => open = after,
                                None => break,
                            }
                        }
                        if self.toks.get(open).is_some_and(|t| t.is_punct('(')) {
                            let Some(close) = matching_close(self.toks, open) else {
                                break;
                            };
                            let args = self.eval_args(open + 1, close);
                            let name = n.clone();
                            dim = self.method(dim, &name, &args);
                            self.pos = close + 1;
                        } else if n.is_ident("await") {
                            self.pos += 2;
                        } else {
                            dim = Dim::Unknown;
                            self.pos += 2;
                        }
                    }
                    _ => break,
                }
                continue;
            }
            if t.is_ident("as") {
                self.pos += 1;
                let keep = self
                    .peek()
                    .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
                if self.peek().is_some_and(|t| t.kind == Kind::Ident) {
                    self.pos += 1;
                }
                if !keep {
                    dim = Dim::Unknown;
                }
                continue;
            }
            if t.is_punct('?') {
                self.pos += 1;
                continue;
            }
            if t.is_punct('(') {
                // Calling an expression (closure call, fn-typed local).
                let Some(close) = matching_close(self.toks, self.pos) else {
                    break;
                };
                self.eval_args(self.pos + 1, close);
                self.pos = close + 1;
                dim = Dim::Unknown;
                continue;
            }
            if t.is_punct('[') {
                let Some(close) = self.matching_bracket(self.pos) else {
                    break;
                };
                self.eval_args(self.pos + 1, close);
                self.pos = close + 1;
                continue;
            }
            break;
        }
        dim
    }

    /// Evaluates a comma-separated argument region, returning one dimension
    /// per argument (violations inside arguments are reported normally).
    fn eval_args(&mut self, lo: usize, hi: usize) -> Vec<Dim> {
        let saved = self.pos;
        let mut dims = Vec::new();
        let mut start = lo;
        let mut depth = 0i32;
        for i in lo..=hi {
            let at_end = i == hi;
            if !at_end {
                let t = &self.toks[i];
                if t.kind == Kind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        _ => {}
                    }
                }
            }
            if at_end || (self.toks[i].is_punct(',') && depth == 0) {
                if i > start {
                    self.pos = start;
                    let mut first = None;
                    while self.pos < i {
                        let before = self.pos;
                        let d = self.expr_bounded(i);
                        if first.is_none() {
                            first = Some(d);
                        }
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    dims.push(first.unwrap_or(Dim::Unknown));
                }
                start = i + 1;
            }
        }
        self.pos = saved;
        dims
    }

    /// Like [`Eval::expr`] but refuses to scan past `hi` (used for argument
    /// sub-regions).
    fn expr_bounded(&mut self, hi: usize) -> Dim {
        // The recursive parser only ever consumes balanced regions, and an
        // argument region is balanced, so a plain expr() stays within it.
        let d = self.expr();
        if self.pos > hi {
            self.pos = hi;
        }
        d
    }

    fn matching_bracket(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for (i, t) in self.toks.iter().enumerate().skip(open) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// The float/unit method table: how a method call transforms the
    /// receiver's dimension, with the angle-hygiene checks.
    fn method(&mut self, recv: Dim, name: &Token, _args: &[Dim]) -> Dim {
        match name.text.as_str() {
            "get" | "value" => recv,
            "abs" | "min" | "max" | "clamp" | "floor" | "ceil" | "round" | "trunc" | "signum"
            | "copysign" | "rem_euclid" => recv,
            "sin" | "cos" | "tan" | "sin_cos" => {
                if recv.known() && recv != Dim::Radians && recv != Dim::Ratio {
                    self.report(
                        name,
                        AstRule::UnitAngleRaw,
                        format!(
                            "trigonometry on {}; route the angle through Radians \
                             (e.g. Radians::from_degrees) first",
                            recv.label()
                        ),
                    );
                }
                if name.text == "sin_cos" {
                    Dim::Unknown
                } else {
                    Dim::Ratio
                }
            }
            "to_radians" => {
                if recv == Dim::Radians {
                    self.report(
                        name,
                        AstRule::UnitAngleRaw,
                        "to_radians() on a value already tracked as radians; \
                         this double-converts the angle"
                            .to_string(),
                    );
                }
                Dim::Radians
            }
            "to_degrees" => Dim::Degrees,
            "atan" | "asin" | "acos" | "atan2" => Dim::Radians,
            _ => Dim::Unknown,
        }
    }

    fn primary(&mut self) -> Dim {
        let Some(t) = self.peek() else {
            return Dim::Unknown;
        };
        match t.kind {
            Kind::Float | Kind::Int => {
                self.pos += 1;
                Dim::Bot
            }
            Kind::Str | Kind::Char | Kind::Lifetime => {
                self.pos += 1;
                Dim::Unknown
            }
            Kind::Ident => self.ident_primary(),
            Kind::Punct => match t.text.as_str() {
                "(" => {
                    let Some(close) = matching_close(self.toks, self.pos) else {
                        self.pos += 1;
                        return Dim::Unknown;
                    };
                    let dims = self.eval_args(self.pos + 1, close);
                    self.pos = close + 1;
                    if dims.len() == 1 {
                        dims[0]
                    } else {
                        Dim::Unknown
                    }
                }
                "{" => {
                    let Some(close) = matching_brace(self.toks, self.pos) else {
                        self.pos += 1;
                        return Dim::Unknown;
                    };
                    self.eval_args(self.pos + 1, close);
                    self.pos = close + 1;
                    Dim::Unknown
                }
                "[" => {
                    let Some(close) = self.matching_bracket(self.pos) else {
                        self.pos += 1;
                        return Dim::Unknown;
                    };
                    self.eval_args(self.pos + 1, close);
                    self.pos = close + 1;
                    Dim::Unknown
                }
                "|" => self.closure(),
                "#" => {
                    // Attribute on an expression: skip it, keep going.
                    if self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('[')) {
                        if let Some(close) = self.matching_bracket(self.pos + 1) {
                            self.pos = close + 1;
                            return self.primary();
                        }
                    }
                    self.pos += 1;
                    Dim::Unknown
                }
                _ => Dim::Unknown,
            },
        }
    }

    fn closure(&mut self) -> Dim {
        // `|params| body` or `|| body`; the body is scanned like any other
        // expression (one level — blocks recurse through primary()).
        self.pos += 1;
        if self.peek().is_some_and(|t| t.is_punct('|')) {
            self.pos += 1;
        } else {
            let mut depth = 0i32;
            while let Some(t) = self.peek() {
                if t.kind == Kind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "|" if depth == 0 => {
                            self.pos += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                self.pos += 1;
            }
        }
        let before = self.pos;
        self.expr();
        if self.pos == before {
            self.pos += 1;
        }
        Dim::Unknown
    }

    fn ident_primary(&mut self) -> Dim {
        let first = self.toks[self.pos].clone();
        if is_keyword(&first.text) {
            self.pos += 1;
            if first.text == "move" {
                // `move |..| ..` — keep parsing the closure.
                return self.primary();
            }
            return Dim::Unknown;
        }
        // Macro invocation: scan the body, no dimension information.
        if self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(d) = self.toks.get(self.pos + 2) {
                let close = if d.is_punct('(') {
                    matching_close(self.toks, self.pos + 2)
                } else if d.is_punct('[') {
                    self.matching_bracket(self.pos + 2)
                } else if d.is_punct('{') {
                    matching_brace(self.toks, self.pos + 2)
                } else {
                    None
                };
                if let Some(close) = close {
                    self.eval_args(self.pos + 3, close);
                    self.pos = close + 1;
                    return Dim::Unknown;
                }
            }
        }
        // Path: `A::B::C` (turbofish segments skipped).
        let mut segs: Vec<Token> = vec![first];
        self.pos += 1;
        loop {
            let colon2 = self.peek().is_some_and(|t| t.is_punct(':'))
                && self.toks.get(self.pos + 1).is_some_and(|t| t.is_punct(':'));
            if !colon2 {
                break;
            }
            let after = self.pos + 2;
            if self.toks.get(after).is_some_and(|t| t.is_punct('<')) {
                match skip_generics(self.toks, after) {
                    Some(next) => {
                        self.pos = next;
                        continue;
                    }
                    None => break,
                }
            }
            if self.toks.get(after).is_some_and(|t| t.kind == Kind::Ident) {
                segs.push(self.toks[after].clone());
                self.pos = after + 1;
                continue;
            }
            break;
        }
        let unit = segs
            .iter()
            .find_map(|s| unit_dim(&s.text).map(|d| (s.text.clone(), d)));
        if self.peek().is_some_and(|t| t.is_punct('(')) {
            let open = self.pos;
            let Some(close) = matching_close(self.toks, open) else {
                self.pos += 1;
                return Dim::Unknown;
            };
            let args = self.eval_args(open + 1, close);
            self.pos = close + 1;
            let last = segs.last().map(|s| s.text.as_str()).unwrap_or("");
            if let Some((unit_name, dim)) = unit {
                let name_tok = segs
                    .last()
                    .cloned()
                    .unwrap_or_else(|| self.toks[open].clone());
                match last {
                    "new" | "raw" => {
                        if let Some(&arg) = args.first() {
                            if arg.known() && arg != dim {
                                self.report(
                                    &name_tok,
                                    AstRule::UnitRawReentry,
                                    format!(
                                        "raw value carrying {} re-enters {}::{} \
                                         (expects {}); convert before wrapping",
                                        arg.label(),
                                        unit_name,
                                        last,
                                        dim.label()
                                    ),
                                );
                            }
                        }
                        return dim;
                    }
                    "from_degrees" if dim == Dim::Radians => {
                        if let Some(&arg) = args.first() {
                            if arg.known() && arg != Dim::Degrees {
                                self.report(
                                    &name_tok,
                                    AstRule::UnitRawReentry,
                                    format!(
                                        "Radians::from_degrees over a value carrying {}; \
                                         the argument must be degrees",
                                        arg.label()
                                    ),
                                );
                            }
                        }
                        return Dim::Radians;
                    }
                    _ => return Dim::Unknown,
                }
            }
            return Dim::Unknown;
        }
        if segs.len() == 1 {
            return self.env.get(&segs[0].text).copied().unwrap_or(Dim::Unknown);
        }
        // `Meters::ZERO`-style unit constants keep the unit's dimension.
        if segs.len() == 2 {
            if let Some((_, dim)) = unit {
                return dim;
            }
        }
        Dim::Unknown
    }
}

// ---------------------------------------------------------------------------
// Unordered hash-collection reductions
// ---------------------------------------------------------------------------

/// Tracks which locals hold `HashMap`/`HashSet` values, flagging
/// iterate-then-reduce chains whose result depends on hash iteration order.
pub struct HashAnalysis<'a> {
    path: &'a str,
    params: &'a [cfg::Param],
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const HASH_ITERS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "drain",
    "par_iter",
];
const REDUCERS: [&str; 6] = ["sum", "product", "fold", "reduce", "collect", "for_each"];

impl Analysis for HashAnalysis<'_> {
    type Fact = BTreeSet<String>;

    fn boundary(&self) -> BTreeSet<String> {
        self.params
            .iter()
            .filter(|p| {
                p.ty.iter()
                    .any(|t| t.kind == Kind::Ident && HASH_TYPES.contains(&t.text.as_str()))
            })
            .map(|p| p.name.clone())
            .collect()
    }

    fn join(&self, a: &BTreeSet<String>, b: &BTreeSet<String>) -> BTreeSet<String> {
        a.union(b).cloned().collect()
    }

    fn transfer(
        &self,
        tokens: &[Token],
        node: &CfgNode,
        fact: &BTreeSet<String>,
        sink: &mut Vec<AstDiagnostic>,
    ) -> BTreeSet<String> {
        let toks = &tokens[node.tokens.clone()];
        let mut fact = fact.clone();
        // Binding updates: `let [mut] name ... = rhs` / `name = rhs`.
        if node.kind == NodeKind::Stmt {
            let mut j = 0;
            let is_let = toks.first().is_some_and(|t| t.is_ident("let"));
            if is_let {
                j = 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
            }
            let named = toks.get(j).is_some_and(|t| {
                t.kind == Kind::Ident
                    && !is_keyword(&t.text)
                    && toks
                        .get(j + 1)
                        .is_some_and(|n| n.is_punct(':') || n.is_punct('='))
            });
            if named && (is_let || find_standalone_eq(toks, j + 1).is_some()) {
                let name = toks[j].text.clone();
                let hashy = toks[j + 1..]
                    .iter()
                    .any(|t| t.kind == Kind::Ident && HASH_TYPES.contains(&t.text.as_str()));
                if hashy {
                    fact.insert(name);
                } else if is_let || find_standalone_eq(toks, j + 1) == Some(j + 1) {
                    fact.remove(&name);
                }
            }
        }
        // Violation scan: `tracked.iter() ... .sum()` within one node.
        for k in 0..toks.len() {
            if !toks[k].is_punct('.') {
                continue;
            }
            let Some(m) = toks.get(k + 1) else { continue };
            if m.kind != Kind::Ident || !HASH_ITERS.contains(&m.text.as_str()) {
                continue;
            }
            if !call_open(toks, k + 2).is_some_and(|o| toks.get(o).is_some_and(|t| t.is_punct('(')))
            {
                continue;
            }
            let recv_tracked =
                k > 0 && toks[k - 1].kind == Kind::Ident && fact.contains(&toks[k - 1].text);
            if !recv_tracked {
                continue;
            }
            let reduced = (k + 2..toks.len()).any(|r| {
                toks[r].is_punct('.')
                    && toks.get(r + 1).is_some_and(|t| {
                        t.kind == Kind::Ident && REDUCERS.contains(&t.text.as_str())
                    })
                    && call_open(toks, r + 2)
                        .is_some_and(|o| toks.get(o).is_some_and(|t| t.is_punct('(')))
            });
            if reduced {
                sink.push(AstDiagnostic {
                    path: self.path.to_string(),
                    line: m.line,
                    col: m.col,
                    rule: AstRule::UnorderedReduce,
                    message: format!(
                        "reduction over `{}.{}()` depends on hash iteration order; \
                         use a BTree collection or sort before reducing",
                        toks[k - 1].text,
                        m.text
                    ),
                });
            }
        }
        fact
    }
}

/// Index of the call `(` after an optional turbofish starting at `at`.
fn call_open(toks: &[Token], at: usize) -> Option<usize> {
    if toks.get(at).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 2).is_some_and(|t| t.is_punct('<'))
    {
        return skip_generics(toks, at + 2);
    }
    Some(at)
}

// ---------------------------------------------------------------------------
// Parallel-determinism region checks
// ---------------------------------------------------------------------------

/// Functions whose closure arguments run on the `shims/rayon` thread pool.
const PAR_ENTRY_FNS: [&str; 7] = [
    "parallel_map",
    "fan_out",
    "sweep_map",
    "run_jobs",
    "install",
    "spawn",
    "ordered_parallel_map",
];

/// `par_iter`-style adaptors that start a parallel chain.
const PAR_ITER_METHODS: [&str; 3] = ["par_iter", "into_par_iter", "par_iter_mut"];

/// Chain adaptors whose closures execute in parallel.
const PAR_CHAIN_METHODS: [&str; 8] = [
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "inspect",
    "fold",
    "reduce",
];

/// Chain terminators that merge parallel results in nondeterministic order.
const PAR_REDUCE_METHODS: [&str; 4] = ["sum", "product", "reduce", "fold"];

/// Methods that reach through shared-mutable state.
const SHARED_MUT_METHODS: [&str; 13] = [
    "lock",
    "borrow_mut",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One closure handed to a parallel entry point.
struct ParRegion {
    params: Range<usize>,
    body: Range<usize>,
}

/// Region-based parallel-determinism scan over one function body (no fixed
/// point needed: the checks are local to each parallel closure).
fn par_scan(path: &str, tokens: &[Token], body: Range<usize>, out: &mut Vec<AstDiagnostic>) {
    let (lo, hi) = (body.start, body.end);
    let mut regions = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        // `parallel_map(...)` / `scope.spawn(...)`-style entry points.
        if t.kind == Kind::Ident
            && PAR_ENTRY_FNS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matching_close(tokens, i + 1) {
                collect_closures(tokens, i + 2, close.min(hi), &mut regions);
            }
        }
        // `.par_iter()`-style chains.
        if t.is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| {
                n.kind == Kind::Ident && PAR_ITER_METHODS.contains(&n.text.as_str())
            })
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matching_close(tokens, i + 2) {
                let mut p = close + 1;
                while p + 1 < hi && tokens[p].is_punct('.') && tokens[p + 1].kind == Kind::Ident {
                    let m = tokens[p + 1].clone();
                    let Some(open) = call_open(tokens, p + 2) else {
                        break;
                    };
                    if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
                        // Field access mid-chain: stop walking.
                        break;
                    }
                    let Some(c) = matching_close(tokens, open) else {
                        break;
                    };
                    if PAR_CHAIN_METHODS.contains(&m.text.as_str()) {
                        collect_closures(tokens, open + 1, c.min(hi), &mut regions);
                    }
                    if PAR_REDUCE_METHODS.contains(&m.text.as_str()) {
                        out.push(AstDiagnostic {
                            path: path.to_string(),
                            line: m.line,
                            col: m.col,
                            rule: AstRule::ParFloatAccum,
                            message: format!(
                                "`.{}()` merges parallel results in nondeterministic order; \
                                 collect() in index order first, then reduce sequentially",
                                m.text
                            ),
                        });
                    }
                    p = c + 1;
                }
            }
        }
        i += 1;
    }
    for r in &regions {
        region_checks(path, tokens, r, out);
    }
}

/// Collects the closures lexically inside `[lo, hi)` (nested closures are
/// re-scanned as part of their enclosing region; the driver dedups).
fn collect_closures(tokens: &[Token], lo: usize, hi: usize, out: &mut Vec<ParRegion>) {
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        let closure_ctx = i == lo
            || tokens[i - 1].is_punct('(')
            || tokens[i - 1].is_punct(',')
            || tokens[i - 1].is_punct('=')
            || tokens[i - 1].is_punct('{')
            || tokens[i - 1].is_ident("move");
        if !(t.is_punct('|') && closure_ctx) {
            i += 1;
            continue;
        }
        // Parameter list: to the matching `|` at bracket depth 0 (or the
        // immediately following `|` for `||`).
        let params_start = i + 1;
        let mut params_end = None;
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('|')) {
            params_end = Some(i + 1);
        } else {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < hi {
                let t = &tokens[j];
                if t.kind == Kind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "|" if depth == 0 => {
                            params_end = Some(j);
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
        }
        let Some(pend) = params_end else {
            i += 1;
            continue;
        };
        // Body: a block, or the expression up to the top-level `,`.
        let mut body_start = pend + 1;
        // Skip a `-> Ty` return annotation.
        if tokens.get(body_start).is_some_and(|t| t.is_punct('-'))
            && tokens
                .get(body_start + 1)
                .is_some_and(|t| t.is_punct('>') && adjacent(&tokens[body_start], t))
        {
            let mut j = body_start + 2;
            while j < hi && !tokens[j].is_punct('{') {
                j += 1;
            }
            body_start = j;
        }
        let body_end = if tokens.get(body_start).is_some_and(|t| t.is_punct('{')) {
            matching_brace(tokens, body_start)
                .map(|e| (e + 1).min(hi))
                .unwrap_or(hi)
        } else {
            let mut depth = 0i32;
            let mut j = body_start;
            while j < hi {
                let t = &tokens[j];
                if t.kind == Kind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    if depth < 0 {
                        break;
                    }
                }
                j += 1;
            }
            j
        };
        out.push(ParRegion {
            params: params_start..pend,
            body: body_start..body_end,
        });
        i = pend + 1;
    }
}

/// Names declared *inside* a parallel region (closure params, `let` and
/// `for` bindings, nested closure params): mutation of these is private
/// per-item state, not captured shared state.
fn declared_names(tokens: &[Token], region: &ParRegion) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    collect_param_names(&tokens[region.params.clone()], &mut out);
    let (lo, hi) = (region.body.start, region.body.end);
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        if t.is_ident("let") {
            let mut j = i + 1;
            while j < hi {
                let t = &tokens[j];
                if t.is_punct('=') || t.is_punct(';') || t.is_punct(':') {
                    break;
                }
                if t.kind == Kind::Ident && !is_keyword(&t.text) {
                    out.insert(t.text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < hi && !tokens[j].is_ident("in") {
                if tokens[j].kind == Kind::Ident && !is_keyword(&tokens[j].text) {
                    out.insert(tokens[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_punct('|') {
            let ctx = i == lo
                || tokens[i - 1].is_punct('(')
                || tokens[i - 1].is_punct(',')
                || tokens[i - 1].is_punct('=')
                || tokens[i - 1].is_punct('{')
                || tokens[i - 1].is_ident("move");
            if ctx {
                let mut depth = 0i32;
                let mut j = i + 1;
                while j < hi {
                    let t = &tokens[j];
                    if t.kind == Kind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "|" if depth == 0 => break,
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if j < hi {
                    collect_param_names(&tokens[i + 1..j], &mut out);
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Binding names out of a closure parameter list (type annotations after a
/// top-level `:` are skipped).
fn collect_param_names(params: &[Token], out: &mut BTreeSet<String>) {
    let mut depth = 0i32;
    let mut in_type = false;
    for (i, t) in params.iter().enumerate() {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => in_type = true,
                "," if depth == 0 => in_type = false,
                _ => {}
            }
            continue;
        }
        if !in_type && t.kind == Kind::Ident && !is_keyword(&t.text) {
            let _ = i;
            out.insert(t.text.clone());
        }
    }
}

/// The two per-region checks: order-sensitive accumulation into captured
/// state, and shared-mutable access.
fn region_checks(path: &str, tokens: &[Token], region: &ParRegion, out: &mut Vec<AstDiagnostic>) {
    let declared = declared_names(tokens, region);
    let (lo, hi) = (region.body.start, region.body.end);
    for k in lo..hi {
        let t = &tokens[k];
        if t.kind != Kind::Punct {
            continue;
        }
        // `base.path += ...` (also `-=`, `*=`, `/=`) on a captured base.
        if t.text.len() == 1
            && "+-*/".contains(&t.text)
            && tokens
                .get(k + 1)
                .is_some_and(|n| n.is_punct('=') && adjacent(t, n))
            && k > lo
        {
            let mut j = k - 1;
            if tokens[j].kind == Kind::Ident {
                // Walk a `a.b.c` chain back to its base.
                while j >= lo + 2
                    && tokens[j - 1].is_punct('.')
                    && tokens[j - 2].kind == Kind::Ident
                {
                    j -= 2;
                }
                let base = &tokens[j];
                if !is_keyword(&base.text) && !declared.contains(&base.text) || base.text == "self"
                {
                    out.push(AstDiagnostic {
                        path: path.to_string(),
                        line: t.line,
                        col: t.col,
                        rule: AstRule::ParFloatAccum,
                        message: format!(
                            "`{}` accumulates into captured state inside a parallel closure; \
                             results merge in nondeterministic order — return per-item values \
                             and reduce after the ordered collect",
                            base.text
                        ),
                    });
                }
            }
        }
        // `.lock()` / `.borrow_mut()` / atomic writes inside the region.
        if t.is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| {
                n.kind == Kind::Ident && SHARED_MUT_METHODS.contains(&n.text.as_str())
            })
            && tokens.get(k + 2).is_some_and(|n| n.is_punct('('))
        {
            let m = &tokens[k + 1];
            out.push(AstDiagnostic {
                path: path.to_string(),
                line: m.line,
                col: m.col,
                rule: AstRule::ParSharedMut,
                message: format!(
                    "`.{}()` touches shared mutable state inside a parallel closure; \
                     keep parallel closures pure and fan results in via the ordered collect",
                    m.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// The `lint --flow` result: file/function totals plus diagnostics.
#[derive(Debug, Default)]
pub struct FlowReport {
    /// Files analysed (after the standard skip set).
    pub files: usize,
    /// Functions whose CFGs were analysed.
    pub functions: usize,
    /// Post-waiver diagnostics, sorted by `(path, line, col, rule)`.
    pub diagnostics: Vec<AstDiagnostic>,
}

impl FlowReport {
    /// Renders the report in the shared JSON envelope.
    #[must_use]
    pub fn to_json(&self) -> String {
        super::report_json_with(
            self.files,
            &[("functions", self.functions)],
            &self.diagnostics,
        )
    }
}

/// Flow-lints a single source string as if it lived at `rel_path`,
/// returning `(functions_analysed, diagnostics)`.
#[must_use]
pub fn flow_lint_source_counted(rel_path: &str, source: &str) -> (usize, Vec<AstDiagnostic>) {
    if super::classify_ast(rel_path).is_none() {
        return (0, Vec::new());
    }
    let masked = mask::mask(source);
    let tokens = lexer::lex(source);
    let allows = allow_lines(&masked);
    let skip = |line: usize| {
        let idx = line - 1;
        masked.test.get(idx).copied().unwrap_or(false)
            || masked.macro_body.get(idx).copied().unwrap_or(false)
    };
    let mut raw: Vec<AstDiagnostic> = Vec::new();
    let mut analysed = 0usize;
    for f in cfg::find_fns(&tokens) {
        if skip(f.line) {
            continue;
        }
        analysed += 1;
        let graph = cfg::build_cfg(&tokens, f.body.clone());
        let unit = UnitAnalysis {
            path: rel_path,
            params: &f.params,
        };
        run_to_fixpoint(&unit, &tokens, &graph, &mut raw);
        let hash = HashAnalysis {
            path: rel_path,
            params: &f.params,
        };
        run_to_fixpoint(&hash, &tokens, &graph, &mut raw);
        par_scan(rel_path, &tokens, f.body.clone(), &mut raw);
    }
    raw.retain(|d| !skip(d.line));
    raw.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    raw.dedup_by(|a, b| (a.line, a.col, a.rule) == (b.line, b.col, b.rule));
    let mut out: Vec<AstDiagnostic> = raw
        .iter()
        .filter(|d| !allowed(&allows, &masked, d.line - 1, d.rule))
        .cloned()
        .collect();
    flow_dead_waiver_audit(rel_path, &masked, &allows, &raw, &skip, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    out.dedup();
    (analysed, out)
}

/// Flow-lints a single source string (fixture-test entry point).
#[must_use]
pub fn flow_lint_source(rel_path: &str, source: &str) -> Vec<AstDiagnostic> {
    flow_lint_source_counted(rel_path, source).1
}

/// Flags `allow(...)` directives that name *only* flow rules but suppress
/// nothing this pass can see. Mixed directives (flow + other layers) are
/// left to whichever pass audits the other names.
fn flow_dead_waiver_audit(
    rel_path: &str,
    masked: &MaskedFile,
    allows: &[Vec<AstRule>],
    raw: &[AstDiagnostic],
    skip: &dyn Fn(usize) -> bool,
    out: &mut Vec<AstDiagnostic>,
) {
    let is_flow = |n: &str| FLOW_RULES.iter().any(|r| r.name() == n);
    for (idx, comment) in masked.comments.iter().enumerate() {
        if skip(idx + 1) {
            continue;
        }
        let Some((col0, names)) = parse_allow_names(comment) else {
            continue;
        };
        if !names.iter().any(|n| is_flow(n)) || names.iter().any(|n| !is_flow(n)) {
            continue;
        }
        let covered = super::extract::waiver_coverage(masked, idx);
        let live = covered.is_some_and(|line0| {
            raw.iter()
                .any(|d| d.line == line0 + 1 && names.iter().any(|n| n == d.rule.name()))
        });
        if !live && !allowed(allows, masked, idx, AstRule::DeadWaiver) {
            out.push(AstDiagnostic {
                path: rel_path.to_string(),
                line: idx + 1,
                col: col0 + 1,
                rule: AstRule::DeadWaiver,
                message: format!(
                    "flow waiver `allow({})` suppresses nothing here; \
                     remove it or fix the rule list",
                    names.join(", ")
                ),
            });
        }
    }
}

/// Flow-lints every workspace `.rs` file under `workspace_root`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn run_flow_lint(workspace_root: &Path) -> std::io::Result<FlowReport> {
    let mut report = FlowReport::default();
    for path in crate::collect_rust_files(workspace_root)? {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if super::classify_ast(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        report.files += 1;
        let (fns, mut diags) = flow_lint_source_counted(&rel, &source);
        report.functions += fns;
        report.diagnostics.append(&mut diags);
    }
    report.diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule.name()).cmp(&(&b.path, b.line, b.col, b.rule.name()))
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "crates/reach/src/fixture.rs";

    fn fired(src: &str, rule: AstRule) -> bool {
        flow_lint_source(FIXTURE, src)
            .iter()
            .any(|d| d.rule == rule)
    }

    #[test]
    fn mixed_dimension_addition_fires() {
        let src = "pub fn f(d: Meters, t: Seconds) -> f64 { d.get() + t.get() }\n";
        assert!(fired(src, AstRule::UnitMixedDim));
    }

    #[test]
    fn same_dimension_addition_is_silent() {
        let src = "pub fn f(a: Meters, b: Meters) -> f64 { a.get() + b.get() }\n";
        assert!(!fired(src, AstRule::UnitMixedDim));
    }

    #[test]
    fn dimension_propagates_through_locals_and_branches() {
        let src = "pub fn f(v: MetersPerSecond, dt: Seconds, c: bool) -> f64 {\n\
                   let d = v.get() * dt.get();\n\
                   let x = if c { 1.0 } else { 2.0 };\n\
                   d + dt.get() + x\n}\n";
        // `d` is length, `dt` is time: the second `+` mixes them.
        assert!(fired(src, AstRule::UnitMixedDim));
    }

    #[test]
    fn speed_times_time_is_length() {
        let src = "pub fn f(v: MetersPerSecond, dt: Seconds, d0: Meters) -> f64 {\n\
                   let d = v.get() * dt.get();\n\
                   d + d0.get()\n}\n";
        assert!(!fired(src, AstRule::UnitMixedDim));
    }

    #[test]
    fn raw_reentry_with_wrong_dimension_fires() {
        let src = "pub fn f(t: Seconds) -> Meters { Meters::new(t.get()) }\n";
        assert!(fired(src, AstRule::UnitRawReentry));
    }

    #[test]
    fn raw_reentry_with_matching_dimension_is_silent() {
        let src = "pub fn f(d: Meters) -> Meters { Meters::new(d.get() * 2.0) }\n";
        assert!(!fired(src, AstRule::UnitRawReentry));
    }

    #[test]
    fn trig_on_degrees_fires() {
        let src = "pub fn f() -> f64 { let heading_deg = 45.0; heading_deg.sin() }\n";
        assert!(fired(src, AstRule::UnitAngleRaw));
    }

    #[test]
    fn trig_on_radians_is_silent() {
        let src = "pub fn f(a: Radians) -> f64 { a.get().sin() }\n";
        assert!(!fired(src, AstRule::UnitAngleRaw));
    }

    #[test]
    fn captured_accumulation_in_parallel_closure_fires() {
        let src = "pub fn f(xs: &[f64]) -> f64 {\n\
                   let mut total = 0.0;\n\
                   parallel_map(xs, |x| { total += x; });\n\
                   total\n}\n";
        assert!(fired(src, AstRule::ParFloatAccum));
    }

    #[test]
    fn local_accumulation_in_parallel_closure_is_silent() {
        let src = "pub fn f(xs: &[Vec<f64>]) -> Vec<f64> {\n\
                   parallel_map(xs, |row| { let mut acc = 0.0; for v in row { acc += v; } acc })\n}\n";
        assert!(!fired(src, AstRule::ParFloatAccum));
    }

    #[test]
    fn lock_in_parallel_closure_fires() {
        let src = "pub fn f(xs: &[f64]) {\n\
                   parallel_map(xs, |x| { shared.lock().unwrap().push(*x); });\n}\n";
        assert!(fired(src, AstRule::ParSharedMut));
    }

    #[test]
    fn par_iter_sum_fires() {
        let src = "pub fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * 2.0).sum() }\n";
        assert!(fired(src, AstRule::ParFloatAccum));
    }

    #[test]
    fn hash_map_iterate_then_reduce_fires() {
        let src = "pub fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }\n";
        assert!(fired(src, AstRule::UnorderedReduce));
    }

    #[test]
    fn btree_map_iterate_then_reduce_is_silent() {
        let src = "pub fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }\n";
        assert!(!fired(src, AstRule::UnorderedReduce));
    }

    #[test]
    fn waiver_suppresses_and_dead_waiver_fires() {
        let waived = "pub fn f(d: Meters, t: Seconds) -> f64 {\n\
                      // iprism-lint: allow(unit-mixed-dim)\n\
                      d.get() + t.get()\n}\n";
        assert!(flow_lint_source(FIXTURE, waived).is_empty());
        let dead = "pub fn f(a: f64) -> f64 {\n\
                    // iprism-lint: allow(unit-mixed-dim)\n\
                    a * 2.0\n}\n";
        assert!(fired(dead, AstRule::DeadWaiver));
    }
}
