//! The nine AST-level rules: determinism, dimensional safety, NaN hygiene,
//! and single-stepping-loop enforcement.
//!
//! Every check walks the token stream produced by [`crate::ast::lexer`] and
//! reports findings through a `push(token, rule, message)` callback; the
//! caller (in [`crate::ast`]) applies test-region filtering and the
//! `iprism-lint: allow(...)` escape hatch.

use crate::ast::lexer::{Kind, Token};
use crate::ast::{AstFileClass, AstRule};

/// Parameter-name vocabulary: a `pub fn` parameter whose snake_case name
/// contains one of these segments carries physical units and must not be a
/// raw `f64`. The second element is the `iprism-units` newtype to suggest.
const PARAM_VOCAB: &[(&str, &str)] = &[
    ("dt", "Seconds"),
    ("time", "Seconds"),
    ("duration", "Seconds"),
    ("horizon", "Seconds"),
    ("theta", "Radians"),
    ("angle", "Radians"),
    ("heading", "Radians"),
    ("yaw", "Radians"),
    ("phi", "Radians"),
    ("steer", "Radians"),
    ("steering", "Radians"),
    ("speed", "MetersPerSecond"),
    ("vel", "MetersPerSecond"),
    ("velocity", "MetersPerSecond"),
    ("wheelbase", "Meters"),
    ("radius", "Meters"),
    ("margin", "Meters"),
    ("length", "Meters"),
    ("width", "Meters"),
    ("dist", "Meters"),
    ("distance", "Meters"),
    ("resolution", "Meters"),
];

/// Name segments that mark a quantity as a unit *quotient* (yaw_rate,
/// speed_ratio, time_scale): those are not representable by the four base
/// newtypes and are exempt from the param rule.
const QUOTIENT_SEGMENTS: &[&str] = &["rate", "ratio", "factor", "scale", "frac", "fraction"];

/// Return-name vocabulary for [`AstRule::RawF64Return`] (scoped tighter than
/// the param vocabulary: only names that unambiguously promise a dimensioned
/// quantity).
const RETURN_VOCAB: &[&str] = &[
    "distance", "speed", "velocity", "heading", "time", "duration", "radius",
];

/// Methods that make a following float→int `as` cast explicit and exact
/// (rounding already happened, or the value was clamped onto a lattice).
const ROUNDING_METHODS: &[&str] = &[
    "floor",
    "ceil",
    "round",
    "trunc",
    "signum",
    "clamp",
    "min",
    "max",
    "rem_euclid",
    "div_euclid",
];

/// Methods that definitely produce an un-rounded float.
const FLOAT_METHODS: &[&str] = &[
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "log2",
    "log10",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "hypot",
    "to_radians",
    "to_degrees",
    "recip",
    "get",
    "norm",
];

/// Identifiers whose presence in a divisor expression counts as a guard.
const DIV_GUARDS: &[&str] = &["max", "abs", "hypot", "clamp", "EPSILON", "EPS"];

/// Integer type names that make an `as` cast a float→int truncation hazard.
const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Runs every rule enabled by `class` over `tokens`.
///
/// `skip` returns `true` for 1-based source lines the rules must ignore
/// (test modules, `macro_rules!` bodies).
pub fn check_tokens(
    tokens: &[Token],
    class: AstFileClass,
    skip: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(&Token, AstRule, String),
) {
    let mut push = |t: &Token, rule: AstRule, msg: String| {
        if !skip(t.line) {
            push(t, rule, msg);
        }
    };
    if class.determinism {
        check_hash_collections(tokens, &mut push);
        check_unseeded_rng(tokens, &mut push);
    }
    if class.units_param_api || class.units_return_api {
        check_signatures(tokens, class, &mut push);
    }
    if !class.units_crate {
        check_angle_conv(tokens, &mut push);
    }
    check_partial_cmp_unwrap(tokens, &mut push);
    if class.hot_path {
        check_float_div(tokens, &mut push);
        check_float_int_cast(tokens, &mut push);
    }
    if class.world_step {
        check_world_step(tokens, &mut push);
    }
}

/// Receiver names the world-step rule treats as a `World`: the canonical
/// `world` binding plus derived bindings like `final_world`/`mut_world`.
fn is_world_receiver(t: &Token) -> bool {
    t.kind == Kind::Ident && (t.text == "world" || t.text.ends_with("_world"))
}

fn check_world_step(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if is_world_receiver(t)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|n| n.is_ident("step"))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            push(
                &tokens[i + 2],
                AstRule::WorldStepOutsideSim,
                format!(
                    "`{}.step(...)` outside `crates/sim` bypasses the episode \
                     engine (outcome detection, tracing, observers); step \
                     through `iprism_sim::Episode` or `run_episode` instead",
                    t.text
                ),
            );
        }
    }
}

fn check_hash_collections(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for t in tokens {
        if t.kind == Kind::Ident && matches!(t.text.as_str(), "HashMap" | "HashSet") {
            let alt = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                t,
                AstRule::NoHashCollections,
                format!(
                    "`{}` in determinism-critical code: iteration order varies \
                     between runs; use `{alt}` (ordered) instead",
                    t.text
                ),
            );
        }
    }
}

fn check_unseeded_rng(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for t in tokens {
        if t.kind == Kind::Ident
            && matches!(
                t.text.as_str(),
                "thread_rng" | "from_entropy" | "OsRng" | "ThreadRng"
            )
        {
            push(
                t,
                AstRule::NoUnseededRng,
                format!(
                    "`{}` draws entropy from the OS: runs become irreproducible; \
                     seed explicitly with `SmallRng::seed_from_u64`",
                    t.text
                ),
            );
        }
    }
}

fn check_angle_conv(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for t in tokens {
        if t.kind == Kind::Ident && matches!(t.text.as_str(), "to_radians" | "to_degrees") {
            push(
                t,
                AstRule::AngleConvOutsideUnits,
                format!(
                    "`{}` outside `crates/units`: angle-unit conversions live in \
                     the units layer so degrees never leak into the geometry core",
                    t.text
                ),
            );
        }
    }
}

fn check_partial_cmp_unwrap(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") || !tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let Some(close) = matching_close(tokens, i + 1) else {
            continue;
        };
        if tokens.get(close + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(close + 2)
                .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"))
        {
            push(
                &tokens[close + 2],
                AstRule::PartialCmpUnwrap,
                "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` for \
                 floats (or handle the `None` explicitly)"
                    .to_string(),
            );
        }
    }
}

fn check_float_div(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct('/') {
            continue;
        }
        // `/=` compound assignment: the divisor starts after the `=`.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.is_punct('=')) {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let Some(close) = matching_close(tokens, j) else {
            continue;
        };
        let group = &tokens[j + 1..close];
        let guarded = group
            .iter()
            .any(|g| g.kind == Kind::Ident && DIV_GUARDS.contains(&g.text.as_str()));
        if guarded {
            continue;
        }
        // A *binary* minus at the group's top level: the classic
        // catastrophic-cancellation divisor `a / (b - c)`.
        let mut depth = 0i32;
        let mut has_difference = false;
        for (k, g) in group.iter().enumerate() {
            match g.text.as_str() {
                "(" | "[" | "{" if g.kind == Kind::Punct => depth += 1,
                ")" | "]" | "}" if g.kind == Kind::Punct => depth -= 1,
                "-" if g.kind == Kind::Punct && depth == 0 => {
                    let binary = k > 0
                        && (matches!(group[k - 1].kind, Kind::Ident | Kind::Int | Kind::Float)
                            || group[k - 1].is_punct(')')
                            || group[k - 1].is_punct(']'));
                    if binary {
                        has_difference = true;
                    }
                }
                _ => {}
            }
        }
        if has_difference {
            push(
                t,
                AstRule::UnguardedFloatDiv,
                "division by a parenthesized difference can hit a ~0 denominator \
                 and produce inf/NaN; guard it (`.max(eps)`, `.abs()` check) or \
                 restructure"
                    .to_string(),
            );
        }
    }
}

fn check_float_int_cast(tokens: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as")
            || !tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == Kind::Ident && INT_TYPES.contains(&n.text.as_str()))
        {
            continue;
        }
        if i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let fire = if prev.kind == Kind::Float {
            true
        } else if prev.is_punct(')') {
            let Some(open) = matching_open(tokens, i - 1) else {
                continue;
            };
            let method = (open >= 2 && tokens[open - 2].is_punct('.'))
                .then(|| tokens[open - 1].text.as_str())
                .filter(|_| tokens[open - 1].kind == Kind::Ident);
            match method {
                Some(m) if ROUNDING_METHODS.contains(&m) => false,
                Some(m) if FLOAT_METHODS.contains(&m) => true,
                _ => tokens[open + 1..i - 1].iter().any(float_evidence),
            }
        } else {
            false
        };
        if fire {
            push(
                t,
                AstRule::FloatIntCast,
                "float→int `as` cast truncates silently (and saturates on \
                 NaN/overflow); make the rounding explicit with \
                 `.floor()`/`.ceil()`/`.round()` before the cast"
                    .to_string(),
            );
        }
    }
}

/// Is this token clear evidence that the surrounding expression is a float?
fn float_evidence(t: &Token) -> bool {
    t.kind == Kind::Float
        || (t.kind == Kind::Ident
            && (matches!(t.text.as_str(), "f64" | "f32")
                || FLOAT_METHODS.contains(&t.text.as_str())))
}

/// Scans `pub fn` signatures for raw-`f64` physical parameters and returns.
fn check_signatures(
    tokens: &[Token],
    class: AstFileClass,
    push: &mut impl FnMut(&Token, AstRule, String),
) {
    for f in 0..tokens.len() {
        if !tokens[f].is_ident("fn") || !is_public_fn(tokens, f) {
            continue;
        }
        let Some(name_tok) = tokens.get(f + 1).filter(|t| t.kind == Kind::Ident) else {
            continue; // `fn(...)` pointer type, not an item
        };
        let mut k = f + 2;
        if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
            let Some(after) = skip_generics(tokens, k) else {
                continue;
            };
            k = after;
        }
        if !tokens.get(k).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let Some(close) = matching_close(tokens, k) else {
            continue;
        };
        if class.units_param_api {
            for (name, ty) in split_params(&tokens[k + 1..close]) {
                check_one_param(name, ty, push);
            }
        }
        if class.units_return_api {
            check_return(tokens, name_tok, close, push);
        }
    }
}

/// Walks back from the `fn` keyword over qualifiers to find a bare `pub`
/// (`pub(crate)` and private fns are not public API).
fn is_public_fn(tokens: &[Token], f: usize) -> bool {
    let mut j = f;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.kind == Kind::Ident
            && matches!(t.text.as_str(), "const" | "async" | "unsafe" | "extern")
        {
            continue;
        }
        if t.kind == Kind::Str {
            continue; // the ABI string of `extern "C"`
        }
        return t.is_ident("pub");
    }
    false
}

/// Skips a balanced `<...>` generics list starting at `open`; returns the
/// index just past the closing `>`. An `->` inside (e.g. `F: Fn(f64) -> f64`)
/// does not close the list.
pub(crate) fn skip_generics(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// Splits a parameter-list token slice at top-level commas into
/// `(name_token, type_tokens)` pairs; `self` receivers and destructuring
/// patterns are skipped.
pub(crate) fn split_params(params: &[Token]) -> Vec<(&Token, &[Token])> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut paren = 0i32;
    let mut angle = 0i32;
    for i in 0..=params.len() {
        let at_end = i == params.len();
        if !at_end {
            let t = &params[i];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => paren += 1,
                    ")" | "]" | "}" => paren -= 1,
                    "<" => angle += 1,
                    ">" if !(i > 0 && params[i - 1].is_punct('-')) => angle -= 1,
                    _ => {}
                }
            }
        }
        if at_end || (params[i].is_punct(',') && paren == 0 && angle == 0) {
            if let Some(pair) = parse_param(&params[start..i]) {
                out.push(pair);
            }
            start = i + 1;
        }
    }
    out
}

fn parse_param(param: &[Token]) -> Option<(&Token, &[Token])> {
    // The pattern:type separator is the first top-level `:` that is not `::`.
    let mut depth = 0i32;
    let mut colon = None;
    let mut i = 0;
    while i < param.len() {
        let t = &param[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                ":" if depth == 0 => {
                    if param.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                        i += 1; // path `::`
                    } else {
                        colon = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    let colon = colon?;
    let (pattern, ty) = (&param[..colon], &param[colon + 1..]);
    // Simple binding only (optionally `mut name`); destructuring patterns
    // have no single name to check.
    let name = pattern
        .iter()
        .filter(|t| t.kind == Kind::Ident && t.text != "mut")
        .collect::<Vec<_>>();
    match name.as_slice() {
        [single] if pattern.iter().all(|t| t.kind == Kind::Ident) => Some((single, ty)),
        _ => None,
    }
}

fn check_one_param(name: &Token, ty: &[Token], push: &mut impl FnMut(&Token, AstRule, String)) {
    if !type_is_bare_f64(ty) {
        return;
    }
    let ident = name.text.trim_start_matches('_');
    if ident.split('_').any(|seg| QUOTIENT_SEGMENTS.contains(&seg)) {
        return;
    }
    let Some((_, newtype)) = PARAM_VOCAB
        .iter()
        .find(|(seg, _)| ident.split('_').any(|s| s == *seg))
    else {
        return;
    };
    push(
        name,
        AstRule::RawF64Param,
        format!(
            "public parameter `{}: f64` carries physical units; take \
             `{newtype}` from `iprism-units` so callers cannot transpose \
             arguments or mix unit conventions",
            name.text
        ),
    );
}

fn check_return(
    tokens: &[Token],
    name_tok: &Token,
    close: usize,
    push: &mut impl FnMut(&Token, AstRule, String),
) {
    if !(tokens.get(close + 1).is_some_and(|t| t.is_punct('-'))
        && tokens.get(close + 2).is_some_and(|t| t.is_punct('>')))
    {
        return;
    }
    let mut ret = Vec::new();
    let mut depth = 0i32;
    for t in &tokens[close + 3..] {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "{" | ";" if depth == 0 => break,
                _ => {}
            }
        }
        if t.is_ident("where") && depth == 0 {
            break;
        }
        ret.push(t.clone());
    }
    if !type_is_bare_f64(&ret) {
        return;
    }
    let name = name_tok.text.trim_start_matches('_');
    if !name.split('_').any(|seg| RETURN_VOCAB.contains(&seg)) {
        return;
    }
    push(
        name_tok,
        AstRule::RawF64Return,
        format!(
            "public function `{}` promises a dimensioned quantity but returns \
             a raw `f64`; return the matching `iprism-units` newtype",
            name_tok.text
        ),
    );
}

/// Is the type token list a bare `f64` (possibly behind `&`/`mut`)?
fn type_is_bare_f64(ty: &[Token]) -> bool {
    let core: Vec<&Token> = ty
        .iter()
        .filter(|t| !(t.is_punct('&') || t.is_ident("mut") || t.kind == Kind::Lifetime))
        .collect();
    matches!(core.as_slice(), [only] if only.is_ident("f64"))
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the `(` matching the `)` at `close`.
fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        let t = &tokens[i];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}
