//! Workspace call graph and hot-path taint propagation.
//!
//! `cargo xtask lint --graph` builds a best-effort call graph over every
//! workspace `.rs` file from the per-file extraction in [`super::extract`],
//! then runs fixed-point taint propagation for the three hot-path
//! properties (panic-reachability, allocation, nondeterminism). A function
//! opts into certification with a `// iprism: hot-path(...)` marker; any
//! marked function that transitively reaches a taint source is reported
//! with its full witness chain (`a → b → c: alloc via Vec::push at
//! file:line`), so every violation is a readable proof.
//!
//! Name resolution is deliberately best-effort: a call resolves to every
//! workspace `fn` whose name (and receiver shape) matches, narrowed by the
//! caller's Cargo dependency closure so e.g. an `.step(..)` in `crates/rl`
//! can never resolve into `crates/sim`, which `iprism-rl` does not depend
//! on. Calls with no workspace candidate (std, shims outside the closure)
//! are *unresolved*; their count is surfaced in the `--json` report so the
//! soundness gap is visible, not silent.
//!
//! Waivers reuse the standard `// iprism-lint: allow(<rule>)` mechanism
//! with the graph rule names: a waiver on a line kills the direct sources
//! on that line *and* cuts call edges originating there, and the pass runs
//! its own dead-waiver audit over hot-path directives.

use std::collections::BTreeMap;
use std::path::Path;

use super::extract::{extract_file, Call, CallTarget, FileExtract, HotProp, SourceHit, ALL_PROPS};
use super::{AstDiagnostic, AstRule};

/// Headline numbers for the `--graph` report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Files included in the graph (same skip set as the other passes).
    pub files: usize,
    /// `fn` items extracted.
    pub functions: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Call sites with no workspace candidate (std/primitive methods,
    /// crates outside the caller's dependency closure).
    pub unresolved: usize,
    /// Functions carrying a `hot-path(...)` marker.
    pub markers: usize,
}

/// The result of a full `lint --graph` run.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Headline numbers.
    pub stats: GraphStats,
    /// Certification violations, marker errors and dead waivers, sorted by
    /// `(path, line, col, rule)`.
    pub diagnostics: Vec<AstDiagnostic>,
}

impl GraphReport {
    /// Renders the report as a JSON document for CI consumption (the shared
    /// envelope from [`super::render_report`], with the graph headline
    /// counts between `files_checked` and `violations`).
    #[must_use]
    pub fn to_json(&self) -> String {
        super::report_json_with(
            self.stats.files,
            &[
                ("functions", self.stats.functions),
                ("edges", self.stats.edges),
                ("unresolved_edges", self.stats.unresolved),
                ("hot_path_markers", self.stats.markers),
            ],
            &self.diagnostics,
        )
    }
}

/// Workspace dependency closure, parsed from the `Cargo.toml` manifests.
/// Maps each crate directory to the set of crate directories its
/// `[dependencies]` transitively reach (including itself).
#[derive(Debug, Clone, Default)]
pub struct DepClosure {
    dirs: Vec<String>,
    closure: BTreeMap<String, Vec<String>>,
}

impl DepClosure {
    /// Parses every workspace manifest under `root`. Missing or partial
    /// manifests degrade to "no narrowing" for the affected files.
    #[must_use]
    pub fn load(root: &Path) -> DepClosure {
        let mut manifests: Vec<(String, String)> = Vec::new(); // (dir, toml)
        let push = |dir: &str, manifests: &mut Vec<(String, String)>| {
            if let Ok(text) = std::fs::read_to_string(root.join(dir).join("Cargo.toml")) {
                manifests.push((dir.to_string(), text));
            }
        };
        push("", &mut manifests);
        push("xtask", &mut manifests);
        for parent in ["crates", "shims"] {
            let Ok(entries) = std::fs::read_dir(root.join(parent)) else {
                continue;
            };
            let mut dirs: Vec<String> = entries
                .flatten()
                .filter(|e| e.path().is_dir())
                .map(|e| format!("{parent}/{}", e.file_name().to_string_lossy()))
                .collect();
            dirs.sort();
            for dir in dirs {
                push(&dir, &mut manifests);
            }
        }

        let mut name_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let mut deps_of: BTreeMap<String, Vec<String>> = BTreeMap::new(); // dir -> dep names
        for (dir, toml) in &manifests {
            let (name, deps) = parse_manifest(toml);
            if let Some(name) = name {
                name_to_dir.insert(name, dir.clone());
            }
            deps_of.insert(dir.clone(), deps);
        }

        let mut closure = BTreeMap::new();
        for dir in deps_of.keys() {
            let mut reach = vec![dir.clone()];
            let mut queue = vec![dir.clone()];
            while let Some(d) = queue.pop() {
                for dep in deps_of.get(&d).into_iter().flatten() {
                    if let Some(dep_dir) = name_to_dir.get(dep) {
                        if !reach.contains(dep_dir) {
                            reach.push(dep_dir.clone());
                            queue.push(dep_dir.clone());
                        }
                    }
                }
            }
            closure.insert(dir.clone(), reach);
        }
        let mut dirs: Vec<String> = deps_of.into_keys().collect();
        // Longest prefix first so `crates/nn` wins over the root crate.
        dirs.sort_by_key(|d| std::cmp::Reverse(d.len()));
        DepClosure { dirs, closure }
    }

    fn dir_of(&self, rel_path: &str) -> Option<&str> {
        self.dirs
            .iter()
            .find(|d| {
                if d.is_empty() {
                    rel_path.starts_with("src/")
                } else {
                    rel_path.starts_with(&format!("{d}/"))
                }
            })
            .map(String::as_str)
    }

    /// May code in `caller_path` statically call code in `callee_path`?
    #[must_use]
    pub fn reaches(&self, caller_path: &str, callee_path: &str) -> bool {
        let (Some(a), Some(b)) = (self.dir_of(caller_path), self.dir_of(callee_path)) else {
            return true; // unknown layout: don't narrow
        };
        self.closure
            .get(a)
            .is_some_and(|set| set.iter().any(|d| d == b))
    }
}

/// Extracts the `[package] name` and `[dependencies]` keys from a
/// manifest. Hand-rolled single-pass scan: xtask has no TOML dependency.
fn parse_manifest(toml: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut name = None;
    let mut deps = Vec::new();
    for line in toml.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').to_string();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    name = Some(value.trim().trim_matches('"').to_string());
                }
            }
        } else if section == "dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !key.is_empty() && line[key.len()..].trim_start().starts_with(['=', '.']) {
                deps.push(key);
            }
        }
    }
    (name, deps)
}

/// One function node in the flattened workspace graph.
#[derive(Debug, Clone, Copy)]
struct Node {
    file: usize,
    local: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
struct Edge {
    caller: usize,
    callee: usize,
    file: usize,
    line: usize,
}

/// How a marked function came to be tainted, per node.
#[derive(Debug, Clone)]
enum Witness {
    /// A direct source in the node's own body.
    Source {
        what: String,
        file: usize,
        line: usize,
        col: usize,
    },
    /// Tainted through the call edge at this index.
    Via(usize),
}

/// The resolved workspace call graph.
pub struct CallGraph {
    files: Vec<FileExtract>,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Per node, indices of edges whose callee is that node.
    callers_of: Vec<Vec<usize>>,
    unresolved: usize,
}

impl CallGraph {
    /// Builds the graph from per-file extractions. `deps` narrows
    /// resolution to each caller's dependency closure when present.
    #[must_use]
    pub fn build(files: Vec<FileExtract>, deps: Option<&DepClosure>) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (li, def) in file.fns.iter().enumerate() {
                by_name.entry(&def.name).or_default().push(nodes.len());
                nodes.push(Node {
                    file: fi,
                    local: li,
                });
            }
        }
        let node_of = |fi: usize, li: usize| -> usize {
            files[..fi].iter().map(|f| f.fns.len()).sum::<usize>() + li
        };

        let mut edges = Vec::new();
        let mut unresolved = 0usize;
        for (fi, file) in files.iter().enumerate() {
            for call in &file.calls {
                let caller = node_of(fi, call.from_fn);
                let n = resolve(&files, &nodes, &by_name, deps, fi, call, caller, &mut edges);
                if n == 0 {
                    unresolved += 1;
                }
            }
        }

        let mut callers_of = vec![Vec::new(); nodes.len()];
        for (ei, e) in edges.iter().enumerate() {
            callers_of[e.callee].push(ei);
        }
        CallGraph {
            files,
            nodes,
            edges,
            callers_of,
            unresolved,
        }
    }

    fn def(&self, n: usize) -> &super::extract::FnDef {
        let node = self.nodes[n];
        &self.files[node.file].fns[node.local]
    }

    fn display(&self, n: usize) -> String {
        self.def(n).display()
    }

    /// Headline numbers (marker count included).
    #[must_use]
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            files: self.files.len(),
            functions: self.nodes.len(),
            edges: self.edges.len(),
            unresolved: self.unresolved,
            markers: (0..self.nodes.len())
                .filter(|&n| !self.def(n).props.is_empty())
                .count(),
        }
    }

    /// Fixed-point (reverse-BFS) taint for one property: every node that
    /// can reach an unwaived source gets a shortest witness.
    fn taint(&self, prop: HotProp) -> Vec<Option<Witness>> {
        let mut witness: Vec<Option<Witness>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for (fi, file) in self.files.iter().enumerate() {
            for s in &file.sources {
                if s.prop != prop || self.waived(fi, s.line, prop) {
                    continue;
                }
                let n = self.node_of(fi, s.from_fn);
                if witness[n].is_none() {
                    witness[n] = Some(Witness::Source {
                        what: s.what.clone(),
                        file: fi,
                        line: s.line,
                        col: s.col,
                    });
                    queue.push_back(n);
                }
            }
        }
        while let Some(n) = queue.pop_front() {
            for &ei in &self.callers_of[n] {
                let e = self.edges[ei];
                if self.waived(e.file, e.line, prop) {
                    continue;
                }
                if witness[e.caller].is_none() {
                    witness[e.caller] = Some(Witness::Via(ei));
                    queue.push_back(e.caller);
                }
            }
        }
        witness
    }

    fn waived(&self, file: usize, line: usize, prop: HotProp) -> bool {
        self.files[file]
            .waived
            .get(line - 1)
            .is_some_and(|w| w[prop.idx()])
    }

    fn node_of(&self, fi: usize, li: usize) -> usize {
        self.files[..fi].iter().map(|f| f.fns.len()).sum::<usize>() + li
    }

    /// Runs certification: marker violations (with witness chains), marker
    /// syntax errors and the graph-side dead-waiver audit.
    #[must_use]
    pub fn lint(&self) -> Vec<AstDiagnostic> {
        let mut out: Vec<AstDiagnostic> = self
            .files
            .iter()
            .flat_map(|f| f.errors.iter().cloned())
            .collect();

        let taints: Vec<Vec<Option<Witness>>> = ALL_PROPS.iter().map(|&p| self.taint(p)).collect();

        for n in 0..self.nodes.len() {
            let def = self.def(n);
            for &prop in &def.props {
                let Some(w) = &taints[prop.idx()][n] else {
                    continue;
                };
                let file = &self.files[self.nodes[n].file];
                out.push(AstDiagnostic {
                    path: file.path.clone(),
                    line: def.line,
                    col: def.col,
                    rule: prop.rule(),
                    message: format!(
                        "`{}` is marked hot-path({}) but reaches {}: {}",
                        def.display(),
                        prop.marker_name(),
                        match prop {
                            HotProp::NoPanic => "a panic",
                            HotProp::NoAlloc => "an allocation",
                            HotProp::Deterministic => "a nondeterminism source",
                        },
                        self.chain(n, prop, w, &taints[prop.idx()])
                    ),
                });
            }
        }

        self.dead_waivers(&taints, &mut out);
        out.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule.name()).cmp(&(&b.path, b.line, b.col, b.rule.name()))
        });
        out.dedup_by(|a, b| (&a.path, a.line, a.col, a.rule) == (&b.path, b.line, b.col, b.rule));
        out
    }

    /// Renders the witness chain `a → b → c: alloc via `what` at file:line:col`.
    fn chain(
        &self,
        start: usize,
        prop: HotProp,
        first: &Witness,
        taint: &[Option<Witness>],
    ) -> String {
        let mut names = vec![self.display(start)];
        let mut w = first;
        for _ in 0..self.nodes.len() {
            match w {
                Witness::Source {
                    what,
                    file,
                    line,
                    col,
                } => {
                    return format!(
                        "{}: {} via {} at {}:{}:{}",
                        names.join(" → "),
                        prop.label(),
                        what,
                        self.files[*file].path,
                        line,
                        col
                    );
                }
                Witness::Via(ei) => {
                    let callee = self.edges[*ei].callee;
                    names.push(self.display(callee));
                    match &taint[callee] {
                        Some(next) => w = next,
                        None => break,
                    }
                }
            }
        }
        format!(
            "{}: {} (witness truncated)",
            names.join(" → "),
            prop.label()
        )
    }

    /// Graph-side dead-waiver audit: an `allow(hot-path-*)` directive is
    /// live when a covered line carries a matching direct source (waived
    /// sources included — removing the waiver would seed them) or a call
    /// edge to a tainted callee (the waiver is cutting that edge).
    fn dead_waivers(&self, taints: &[Vec<Option<Witness>>], out: &mut Vec<AstDiagnostic>) {
        for (fi, file) in self.files.iter().enumerate() {
            for hw in &file.hot_waivers {
                let source_live =
                    |s: &SourceHit| hw.covered.contains(&s.line) && hw.props.contains(&s.prop);
                let edge_live = |e: &Edge| {
                    e.file == fi
                        && hw.covered.contains(&e.line)
                        && hw.props.iter().any(|p| taints[p.idx()][e.callee].is_some())
                };
                let live = file.sources.iter().any(source_live) || self.edges.iter().any(edge_live);
                if !live {
                    let names: Vec<&str> = hw.props.iter().map(|p| p.rule().name()).collect();
                    out.push(AstDiagnostic {
                        path: file.path.clone(),
                        line: hw.line,
                        col: hw.col,
                        rule: AstRule::DeadWaiver,
                        message: format!(
                            "hot-path waiver `allow({})` suppresses nothing: no matching \
                             source or tainted call edge on the covered line",
                            names.join(", ")
                        ),
                    });
                }
            }
        }
    }

    /// Shortest call path between two functions named by `Type::name` or
    /// bare `name` (test/debug helper; used by the golden chain test).
    #[must_use]
    pub fn find_path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let matches = |n: usize, q: &str| {
            let def = self.def(n);
            def.name == q || def.display() == q
        };
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (ei, e) in self.edges.iter().enumerate() {
            fwd[e.caller].push(ei);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.nodes.len()]; // node -> edge used
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for (n, seen_n) in seen.iter_mut().enumerate() {
            if matches(n, from) {
                *seen_n = true;
                queue.push_back(n);
            }
        }
        while let Some(n) = queue.pop_front() {
            if matches(n, to) {
                let mut path = vec![self.display(n)];
                let mut cur = n;
                while let Some(ei) = prev[cur] {
                    cur = self.edges[ei].caller;
                    path.push(self.display(cur));
                }
                path.reverse();
                return Some(path);
            }
            for &ei in &fwd[n] {
                let m = self.edges[ei].callee;
                if !seen[m] {
                    seen[m] = true;
                    prev[m] = Some(ei);
                    queue.push_back(m);
                }
            }
        }
        None
    }
}

/// Resolves one call site, appending matching edges. Returns the number of
/// candidates found.
#[allow(clippy::too_many_arguments)]
fn resolve(
    files: &[FileExtract],
    nodes: &[Node],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: Option<&DepClosure>,
    fi: usize,
    call: &Call,
    caller: usize,
    edges: &mut Vec<Edge>,
) -> usize {
    let name = call.target.name();
    let Some(cands) = by_name.get(name) else {
        return 0;
    };
    let caller_def = &files[nodes[caller].file].fns[nodes[caller].local];
    let shape_ok = |n: usize| -> bool {
        let def = &files[nodes[n].file].fns[nodes[n].local];
        match &call.target {
            CallTarget::Bare(_) => def.impl_type.is_none(),
            CallTarget::Method(_) => def.has_self,
            CallTarget::SelfMethod(_) => def.impl_type == caller_def.impl_type,
            CallTarget::Typed(ty, _) => def.impl_type.as_deref() == Some(ty),
        }
    };
    let dep_ok = |n: usize| -> bool {
        deps.is_none_or(|d| d.reaches(&files[fi].path, &files[nodes[n].file].path))
    };
    let mut matched: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&n| shape_ok(n) && dep_ok(n))
        .collect();
    // A `self.f(..)` in a trait default body (or with no same-impl match)
    // dispatches to implementors: fall back to any method of that name.
    if matched.is_empty() && matches!(call.target, CallTarget::SelfMethod(_)) {
        matched = cands
            .iter()
            .copied()
            .filter(|&n| {
                let def = &files[nodes[n].file].fns[nodes[n].local];
                (def.has_self || def.in_trait) && dep_ok(n)
            })
            .collect();
    }
    for &callee in &matched {
        edges.push(Edge {
            caller,
            callee,
            file: fi,
            line: call.line,
        });
    }
    matched.len()
}

/// Graph-lints a set of in-memory sources (the fixture-test entry point;
/// no dependency narrowing — every file sees every other).
#[must_use]
pub fn graph_lint_sources(sources: &[(&str, &str)]) -> GraphReport {
    let graph = build_graph_sources(sources);
    let diagnostics = graph.lint();
    GraphReport {
        stats: graph.stats(),
        diagnostics,
    }
}

/// Builds (but does not lint) a graph over in-memory sources.
#[must_use]
pub fn build_graph_sources(sources: &[(&str, &str)]) -> CallGraph {
    let files: Vec<FileExtract> = sources
        .iter()
        .map(|(path, src)| extract_file(path, src))
        .collect();
    CallGraph::build(files, None)
}

/// Builds the call graph over the real workspace tree.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn build_workspace_graph(workspace_root: &Path) -> std::io::Result<CallGraph> {
    let deps = DepClosure::load(workspace_root);
    let mut files = Vec::new();
    for path in crate::collect_rust_files(workspace_root)? {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if crate::classify(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        files.push(extract_file(&rel, &source));
    }
    Ok(CallGraph::build(files, Some(&deps)))
}

/// Runs the full `lint --graph` pass over the workspace.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn run_graph_lint(workspace_root: &Path) -> std::io::Result<GraphReport> {
    let graph = build_workspace_graph(workspace_root)?;
    let diagnostics = graph.lint();
    Ok(GraphReport {
        stats: graph.stats(),
        diagnostics,
    })
}
