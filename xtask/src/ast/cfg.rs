//! Per-function statement-level control-flow graphs over the token stream.
//!
//! The dataflow pass (`cargo xtask lint --flow`, see [`super::flow`]) needs
//! just enough control structure to merge facts at join points: statements
//! are nodes; `if`/`else`, `while`, `for`, `loop` and `match` contribute
//! branch edges and loop back edges; and any construct the best-effort
//! parser cannot shape collapses into a single opaque statement node. That
//! degradation is graceful by design: analyses scan every token of a node,
//! so an unshaped region only loses *join precision*, never coverage.
//!
//! Hand-rolled like the rest of the `xtask` stack — the build environment
//! is offline, so `syn` is unavailable.

use std::ops::Range;

use super::lexer::{Kind, Token};
use super::rules::{matching_close, skip_generics, split_params};

/// What produced a CFG node; the transfer functions use this to decide how
/// to read the node's tokens (e.g. `for` headers bind their loop pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An ordinary statement (or an opaque region the parser gave up on).
    Stmt,
    /// An `if`/`else if` condition (may carry `let` pattern bindings).
    Cond,
    /// A `while` condition (may carry `let` pattern bindings).
    While,
    /// A `for <pat> in <iter>` header: binds the pattern, evaluates the
    /// iterator expression.
    ForHeader,
    /// A `match <scrutinee>` head.
    MatchHead,
    /// One match arm's pattern (plus guard, when present): binds every
    /// lowercase identifier in the pattern.
    ArmPattern,
}

/// One statement-level CFG node: a token range plus successor edges.
#[derive(Debug, Clone)]
pub struct CfgNode {
    /// Token index range (into the file token stream) this node covers.
    pub tokens: Range<usize>,
    /// How to interpret the tokens.
    pub kind: NodeKind,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Nodes in creation order.
    pub nodes: Vec<CfgNode>,
    /// The function entry node, when the body is non-empty.
    pub entry: Option<usize>,
}

/// One function parameter: binding name plus its type tokens.
#[derive(Debug, Clone)]
pub struct Param {
    /// The parameter's binding name.
    pub name: String,
    /// The cloned type tokens (after the `:`).
    pub ty: Vec<Token>,
}

/// One `fn` item with a body, located in a file token stream.
#[derive(Debug, Clone)]
pub struct FnUnit {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` name token.
    pub line: usize,
    /// Simple-binding parameters (destructuring patterns and `self`
    /// receivers are omitted — the analyses treat them as unknown).
    pub params: Vec<Param>,
    /// Token index range of the body, *exclusive* of the outer braces.
    pub body: Range<usize>,
}

/// Finds every `fn` item with a body. Nested fns are reported both as
/// their own unit and inside the enclosing body; the flow driver dedups
/// the resulting diagnostics by position.
#[must_use]
pub fn find_fns(tokens: &[Token]) -> Vec<FnUnit> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == Kind::Ident)) {
            i += 1;
            continue;
        }
        let name_tok = &tokens[i + 1];
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            match skip_generics(tokens, j) {
                Some(after) => j = after,
                None => {
                    i += 1;
                    continue;
                }
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(tokens, j) else {
            i += 1;
            continue;
        };
        let params = split_params(&tokens[j + 1..close])
            .into_iter()
            .map(|(name, ty)| Param {
                name: name.text.clone(),
                ty: ty.to_vec(),
            })
            .collect();
        // Scan past the return type / where clause to the body `{` (or a
        // `;` for bodyless trait declarations).
        let mut k = close + 1;
        let mut open = None;
        while let Some(t) = tokens.get(k) {
            if t.is_punct('{') {
                open = Some(k);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let Some(end) = matching_brace(tokens, open) else {
            i += 1;
            continue;
        };
        out.push(FnUnit {
            name: name_tok.text.clone(),
            line: name_tok.line,
            params,
            body: open + 1..end,
        });
        // Continue *inside* the body so nested fns are found too.
        i = open + 1;
    }
    out
}

/// Index of the `}` matching the `{` at `open`.
#[must_use]
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Builds the statement-level CFG for the body token range of one fn.
#[must_use]
pub fn build_cfg(tokens: &[Token], body: Range<usize>) -> Cfg {
    let mut cfg = Cfg::default();
    let (entry, _exits) = seq(tokens, body, &mut cfg);
    cfg.entry = entry;
    cfg
}

impl Cfg {
    fn push(&mut self, tokens: Range<usize>, kind: NodeKind) -> usize {
        self.nodes.push(CfgNode {
            tokens,
            kind,
            succs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn link(&mut self, from: &[usize], to: usize) {
        for &f in from {
            if !self.nodes[f].succs.contains(&to) {
                self.nodes[f].succs.push(to);
            }
        }
    }
}

/// Parses a statement sequence, returning `(entry, exits)`: the first node
/// of the region and the set of nodes whose control falls out of it.
fn seq(tokens: &[Token], range: Range<usize>, cfg: &mut Cfg) -> (Option<usize>, Vec<usize>) {
    let mut entry = None;
    let mut exits: Vec<usize> = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let (e, x, next) = stmt(tokens, i, range.end, cfg);
        debug_assert!(next > i, "statement parser must make progress");
        if let Some(e) = e {
            if entry.is_none() {
                entry = Some(e);
            }
            cfg.link(&exits, e);
            exits = x;
        }
        i = next.max(i + 1);
    }
    (entry, exits)
}

/// Parses one statement starting at `i`, returning its entry node, its
/// exit nodes and the index just past it.
fn stmt(
    tokens: &[Token],
    i: usize,
    hi: usize,
    cfg: &mut Cfg,
) -> (Option<usize>, Vec<usize>, usize) {
    let t = &tokens[i];
    if t.is_ident("if") {
        return if_stmt(tokens, i, hi, cfg);
    }
    if t.is_ident("while") || t.is_ident("for") {
        let kind = if t.is_ident("while") {
            NodeKind::While
        } else {
            NodeKind::ForHeader
        };
        let Some(open) = block_open(tokens, i + 1, hi) else {
            return opaque(tokens, i, hi, cfg);
        };
        let Some(end) = matching_brace(tokens, open) else {
            return opaque(tokens, i, hi, cfg);
        };
        let header = cfg.push(i..open, kind);
        let (body_entry, body_exits) = seq(tokens, open + 1..end, cfg);
        if let Some(be) = body_entry {
            cfg.link(&[header], be);
            cfg.link(&body_exits, header);
        }
        return (Some(header), vec![header], end + 1);
    }
    if t.is_ident("loop") {
        let Some(open) = block_open(tokens, i + 1, hi) else {
            return opaque(tokens, i, hi, cfg);
        };
        let Some(end) = matching_brace(tokens, open) else {
            return opaque(tokens, i, hi, cfg);
        };
        let (body_entry, body_exits) = seq(tokens, open + 1..end, cfg);
        if let Some(be) = body_entry {
            // Back edge; body exits also fall through (approximates `break`).
            cfg.link(&body_exits, be);
            return (Some(be), body_exits, end + 1);
        }
        return (None, Vec::new(), end + 1);
    }
    if t.is_ident("match") {
        return match_stmt(tokens, i, hi, cfg);
    }
    // Nested items (`fn`, `struct`, `impl`, ...) are not statements of the
    // enclosing body: a nested fn is analysed as its own unit, and scanning
    // its tokens with the *enclosing* function's environment would invent
    // bindings that do not exist there. Skip the whole item.
    if ["fn", "struct", "enum", "impl", "mod", "trait"]
        .iter()
        .any(|k| t.is_ident(k))
    {
        let mut depth = 0i32;
        let mut j = i;
        while j < hi {
            let t = &tokens[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        let end = matching_brace(tokens, j).unwrap_or(hi);
                        return (None, Vec::new(), (end + 1).max(i + 1));
                    }
                    ";" if depth == 0 => return (None, Vec::new(), j + 1),
                    _ => {}
                }
            }
            j += 1;
        }
        return (None, Vec::new(), hi);
    }
    // Plain statement: through the `;` at depth 0, or to the region end
    // (a trailing expression).
    let mut depth = 0i32;
    let mut j = i;
    while j < hi {
        let t = &tokens[j];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => {
                    let node = cfg.push(i..j + 1, NodeKind::Stmt);
                    return (Some(node), vec![node], j + 1);
                }
                _ => {}
            }
        }
        j += 1;
    }
    let node = cfg.push(i..hi, NodeKind::Stmt);
    (Some(node), vec![node], hi)
}

/// Fallback when a structured construct cannot be shaped: one opaque node
/// to the end of the region.
fn opaque(
    tokens: &[Token],
    i: usize,
    hi: usize,
    cfg: &mut Cfg,
) -> (Option<usize>, Vec<usize>, usize) {
    let _ = tokens;
    let node = cfg.push(i..hi, NodeKind::Stmt);
    (Some(node), vec![node], hi)
}

/// The first `{` at bracket depth 0 in `[from, hi)` — the block opener of a
/// condition/iterator header (Rust forbids bare struct literals there, so
/// the first depth-0 brace is the body).
fn block_open(tokens: &[Token], from: usize, hi: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().take(hi).skip(from) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(j),
                _ => {}
            }
        }
    }
    None
}

fn if_stmt(
    tokens: &[Token],
    i: usize,
    hi: usize,
    cfg: &mut Cfg,
) -> (Option<usize>, Vec<usize>, usize) {
    let Some(open) = block_open(tokens, i + 1, hi) else {
        return opaque(tokens, i, hi, cfg);
    };
    let Some(end) = matching_brace(tokens, open) else {
        return opaque(tokens, i, hi, cfg);
    };
    let header = cfg.push(i..open, NodeKind::Cond);
    let (then_entry, then_exits) = seq(tokens, open + 1..end, cfg);
    let mut exits = Vec::new();
    match then_entry {
        Some(te) => {
            cfg.link(&[header], te);
            exits.extend(then_exits);
        }
        None => exits.push(header),
    }
    let mut next = end + 1;
    if tokens.get(next).is_some_and(|t| t.is_ident("else")) {
        if tokens.get(next + 1).is_some_and(|t| t.is_ident("if")) {
            let (ee, ex, after) = if_stmt(tokens, next + 1, hi, cfg);
            if let Some(ee) = ee {
                cfg.link(&[header], ee);
            }
            exits.extend(ex);
            next = after;
        } else if tokens.get(next + 1).is_some_and(|t| t.is_punct('{')) {
            let Some(eend) = matching_brace(tokens, next + 1) else {
                return (Some(header), exits, hi);
            };
            let (else_entry, else_exits) = seq(tokens, next + 2..eend, cfg);
            match else_entry {
                Some(ee) => {
                    cfg.link(&[header], ee);
                    exits.extend(else_exits);
                }
                None => exits.push(header),
            }
            next = eend + 1;
        } else {
            exits.push(header);
        }
    } else {
        // No else: the condition can fall through.
        if !exits.contains(&header) {
            exits.push(header);
        }
    }
    (Some(header), exits, next)
}

fn match_stmt(
    tokens: &[Token],
    i: usize,
    hi: usize,
    cfg: &mut Cfg,
) -> (Option<usize>, Vec<usize>, usize) {
    let Some(open) = block_open(tokens, i + 1, hi) else {
        return opaque(tokens, i, hi, cfg);
    };
    let Some(end) = matching_brace(tokens, open) else {
        return opaque(tokens, i, hi, cfg);
    };
    let head = cfg.push(i..open, NodeKind::MatchHead);
    let mut exits = Vec::new();
    let mut j = open + 1;
    while j < end {
        // Pattern (+ optional guard) runs to the `=>` at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut k = j;
        while k < end {
            let t = &tokens[k];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 && tokens.get(k + 1).is_some_and(|n| n.is_punct('>')) => {
                        arrow = Some(k);
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        let Some(arrow) = arrow else {
            break;
        };
        let pat = cfg.push(j..arrow, NodeKind::ArmPattern);
        cfg.link(&[head], pat);
        let body_start = arrow + 2;
        let (arm_exits, after) = if tokens.get(body_start).is_some_and(|t| t.is_punct('{')) {
            let Some(bend) = matching_brace(tokens, body_start) else {
                break;
            };
            let (be, bx) = seq(tokens, body_start + 1..bend, cfg);
            let exits = match be {
                Some(be) => {
                    cfg.link(&[pat], be);
                    bx
                }
                None => vec![pat],
            };
            let mut after = bend + 1;
            if tokens.get(after).is_some_and(|t| t.is_punct(',')) {
                after += 1;
            }
            (exits, after)
        } else {
            // Expression arm: to the `,` at depth 0 (or the match end).
            let mut depth = 0i32;
            let mut k = body_start;
            while k < end {
                let t = &tokens[k];
                if t.kind == Kind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            let body = cfg.push(body_start..k, NodeKind::Stmt);
            cfg.link(&[pat], body);
            (vec![body], (k + 1).min(end))
        };
        exits.extend(arm_exits);
        j = after.max(j + 1);
    }
    if exits.is_empty() {
        exits.push(head);
    }
    (Some(head), exits, end + 1)
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn cfg_of(src: &str) -> (Vec<Token>, Cfg) {
        let tokens = lex(src);
        let fns = find_fns(&tokens);
        assert_eq!(fns.len(), 1, "expected one fn in fixture");
        let cfg = build_cfg(&tokens, fns[0].body.clone());
        (tokens, cfg)
    }

    #[test]
    fn straight_line_statements_chain() {
        let (_, cfg) = cfg_of("fn f() { let a = 1; let b = 2; let c = 3; }");
        assert_eq!(cfg.nodes.len(), 3);
        assert_eq!(cfg.entry, Some(0));
        assert_eq!(cfg.nodes[0].succs, vec![1]);
        assert_eq!(cfg.nodes[1].succs, vec![2]);
        assert!(cfg.nodes[2].succs.is_empty());
    }

    #[test]
    fn if_else_branches_rejoin() {
        let (_, cfg) =
            cfg_of("fn f(c: bool) { if c { let a = 1; } else { let b = 2; } let d = 3; }");
        // cond, then-stmt, else-stmt, join-stmt
        assert_eq!(cfg.nodes.len(), 4);
        let cond = cfg.entry.unwrap();
        assert_eq!(cfg.nodes[cond].kind, NodeKind::Cond);
        assert_eq!(cfg.nodes[cond].succs.len(), 2);
        let join = cfg.nodes.len() - 1;
        for &branch in &cfg.nodes[cond].succs {
            assert_eq!(cfg.nodes[branch].succs, vec![join]);
        }
    }

    #[test]
    fn if_without_else_falls_through() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { let a = 1; } let d = 3; }");
        let cond = cfg.entry.unwrap();
        // Both the condition and the then-branch reach the join statement.
        let join = cfg.nodes.len() - 1;
        assert!(cfg.nodes[cond].succs.contains(&join));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let (_, cfg) = cfg_of("fn f() { let mut i = 0; while i < 3 { i += 1; } let d = i; }");
        let header = 1;
        assert_eq!(cfg.nodes[header].kind, NodeKind::While);
        let body = 2;
        assert!(cfg.nodes[header].succs.contains(&body));
        assert!(cfg.nodes[body].succs.contains(&header), "back edge missing");
    }

    #[test]
    fn match_arms_branch_and_rejoin() {
        let (_, cfg) = cfg_of(
            "fn f(x: u8) { match x { 0 => { let a = 1; } _ => { let b = 2; } } let d = 3; }",
        );
        let head = cfg.entry.unwrap();
        assert_eq!(cfg.nodes[head].kind, NodeKind::MatchHead);
        assert_eq!(cfg.nodes[head].succs.len(), 2);
        let join = cfg.nodes.len() - 1;
        // Every arm body eventually reaches the join.
        for &pat in &cfg.nodes[head].succs {
            assert_eq!(cfg.nodes[pat].kind, NodeKind::ArmPattern);
            let body = cfg.nodes[pat].succs[0];
            assert!(cfg.nodes[body].succs.contains(&join));
        }
    }

    #[test]
    fn nested_items_are_skipped_in_the_enclosing_cfg() {
        let (tokens, cfg) = {
            let tokens = lex("fn outer() { fn inner(x: f64) { let y = x; } let z = 1; }");
            let fns = find_fns(&tokens);
            let cfg = build_cfg(&tokens, fns[0].body.clone());
            (tokens, cfg)
        };
        // The nested fn is its own unit; the outer CFG sees only `let z = 1;`.
        assert_eq!(cfg.nodes.len(), 1);
        let node = &cfg.nodes[cfg.entry.unwrap()];
        assert!(tokens[node.tokens.clone()].iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn fn_units_carry_params_and_nested_fns() {
        let tokens = lex("fn outer(dt: Seconds) { fn inner(x: f64) { let y = x; } let z = 1; }");
        let fns = find_fns(&tokens);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "outer");
        assert_eq!(fns[0].params.len(), 1);
        assert_eq!(fns[0].params[0].name, "dt");
        assert!(fns[0].params[0].ty.iter().any(|t| t.is_ident("Seconds")));
        assert_eq!(fns[1].name, "inner");
    }
}
