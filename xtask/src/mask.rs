//! Source masking: separates Rust code from comments and string contents so
//! the rules in [`crate::rules`] never fire on text inside a string literal
//! or a comment, and computes the regions (test modules, `macro_rules!`
//! bodies) that individual rules skip.
//!
//! This is a hand-rolled scanner, not a full parser: the build environment
//! is offline, so `syn` is unavailable. The scanner understands exactly the
//! lexical structure needed to mask reliably — line/block (nested) comments,
//! string/raw-string/byte-string literals, char literals vs lifetimes — and
//! leaves everything else untouched.

/// One source file, split into per-line code and comment channels.
#[derive(Debug)]
pub struct MaskedFile {
    /// Line text with comments and string *contents* blanked to spaces
    /// (string delimiters are kept so call structure stays visible).
    pub code: Vec<String>,
    /// Line text of comments only (code blanked); used to find
    /// `iprism-lint: allow(...)` directives.
    pub comments: Vec<String>,
    /// Original line text, used for doc-comment lookup.
    pub original: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` item regions.
    pub test: Vec<bool>,
    /// `true` for lines inside `macro_rules!` bodies.
    pub macro_body: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks `source` into code/comment channels and marks skip regions.
pub fn mask(source: &str) -> MaskedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut state = State::Code;
    let mut i = 0;
    let mut prev_code_char = ' ';

    macro_rules! code_push {
        ($c:expr) => {{
            let c: char = $c;
            code.last_mut().expect("line buffer").push(c);
            comments.last_mut().expect("line buffer").push(' ');
            if c != ' ' {
                prev_code_char = c;
            }
        }};
    }
    macro_rules! comment_push {
        ($c:expr) => {{
            code.last_mut().expect("line buffer").push(' ');
            comments.last_mut().expect("line buffer").push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push(String::new());
            comments.push(String::new());
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment_push!('/');
                    comment_push!('/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    comment_push!('/');
                    comment_push!('*');
                    i += 2;
                } else if c == '"' {
                    code_push!('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_start(&chars, i) {
                    // r"...", r#"..."#, br"..." — blank the prefix, keep a quote.
                    let prefix_len = chars[i..].iter().take_while(|&&c| c != '"').count();
                    for _ in 0..prefix_len {
                        code_push!(' ');
                    }
                    code_push!('"');
                    state = State::RawStr(hashes);
                    i += prefix_len + 1;
                } else if c == 'b'
                    && next == Some('\'')
                    && !is_ident_char(prev_code_char)
                    && prev_code_char != '\''
                {
                    // Byte-char literal `b'x'` (incl. `b'"'`): without this
                    // branch the `b` prefix reads as an identifier character
                    // and a quote inside would open a phantom string state.
                    code_push!(' ');
                    i = consume_char_or_lifetime(&chars, i + 1, |ch| code_push!(ch));
                } else if c == '\'' && !is_ident_char(prev_code_char) && prev_code_char != '\'' {
                    i = consume_char_or_lifetime(&chars, i, |ch| code_push!(ch));
                } else {
                    code_push!(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_push!(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment_push!('/');
                    comment_push!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    comment_push!('*');
                    comment_push!('/');
                    i += 2;
                } else {
                    comment_push!(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_push!(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code_push!(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code_push!('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code_push!(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code_push!('"');
                    for _ in 0..hashes {
                        code_push!(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code_push!(' ');
                    i += 1;
                }
            }
        }
    }

    let original: Vec<String> = source.split('\n').map(str::to_string).collect();
    debug_assert_eq!(original.len(), code.len());
    let test = mark_attr_regions(&code);
    let macro_body = mark_macro_regions(&code);
    MaskedFile {
        code,
        comments,
        original,
        test,
        macro_body,
    }
}

/// Returns `Some(hash_count)` when position `i` starts a raw (byte) string.
///
/// The guard against identifier tails (`varr"x"` is `varr` then a string,
/// not a raw string) must look at the *immediately adjacent* character, not
/// the last non-space code character: after `return r"..."` the last
/// non-space char is the `n` of the keyword, but the quote is still a raw
/// string, and treating it as a normal string desynchronizes the scanner on
/// any embedded `\` or `"`.
fn raw_string_start(chars: &[char], i: usize) -> Option<u32> {
    let adjacent = if i == 0 { ' ' } else { chars[i - 1] };
    if is_ident_char(adjacent) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Consumes either a char literal (blanked) or a lifetime tick (kept) at
/// `chars[i] == '\''`; returns the next index.
fn consume_char_or_lifetime(chars: &[char], i: usize, mut emit: impl FnMut(char)) -> usize {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        // Skip the escaped character itself so '\'' terminates correctly.
        if j < chars.len() {
            j += 1;
        }
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        let end = (j + 1).min(chars.len());
        for _ in i..end {
            emit(' ');
        }
        end
    } else if chars.get(i + 2) == Some(&'\'') {
        // Plain one-char literal like 'x' (works for multi-byte chars since
        // we iterate over chars, not bytes).
        emit(' ');
        emit(' ');
        emit(' ');
        i + 3
    } else {
        // A lifetime: keep the tick as code.
        emit('\'');
        i + 1
    }
}

/// Marks line regions covered by `#[cfg(test)]` / `#[test]` attributes by
/// brace-matching the item that follows the attribute.
fn mark_attr_regions(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    for start in 0..code.len() {
        let line = &code[start];
        let is_test_attr = line.contains("cfg(test)")
            || line.contains("cfg(all(test")
            || line.contains("cfg(any(test")
            || has_bare_test_attr(line);
        if is_test_attr {
            mark_item(code, start, &mut marked);
        }
    }
    marked
}

fn has_bare_test_attr(line: &str) -> bool {
    line.contains("#[test]") || line.contains("#[ignore]")
}

/// Marks `macro_rules!` bodies; rules that reason about item structure
/// (doc coverage) skip them since macro bodies are templates, not items.
fn mark_macro_regions(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    for start in 0..code.len() {
        if code[start].contains("macro_rules!") && !marked[start] {
            mark_item(code, start, &mut marked);
        }
    }
    marked
}

/// Marks from `start` to the end of the item that begins there: through the
/// matching `}` of the first `{`, or through the first `;` outside brackets
/// if it appears before any brace (e.g. `#[cfg(test)] use foo;`). A `}`
/// closing an *enclosing* scope (brace depth going negative) also ends the
/// region — a field-level attribute must not swallow the items that follow
/// its struct.
fn mark_item(code: &[String], start: usize, marked: &mut [bool]) {
    let mut brace = 0i32;
    let mut bracket = 0i32;
    let mut seen_brace = false;
    for (offset, line) in code[start..].iter().enumerate() {
        marked[start + offset] = true;
        for c in line.chars() {
            match c {
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' => {
                    brace += 1;
                    seen_brace = true;
                }
                '}' => {
                    brace -= 1;
                    if brace < 0 || (seen_brace && brace == 0) {
                        return;
                    }
                }
                ';' if !seen_brace && brace == 0 && bracket == 0 => return,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The code channel with string contents blanked but delimiters kept.
    fn code_of(src: &str) -> Vec<String> {
        mask(src).code
    }

    #[test]
    fn line_and_block_comments_move_to_comment_channel() {
        let m = mask("let x = 1; // trailing panic!()\n/* block */ let y = 2;\n");
        assert_eq!(m.code[0].trim_end(), "let x = 1;");
        assert!(m.comments[0].contains("panic!()"));
        assert_eq!(m.code[1].trim(), "let y = 2;");
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let m = mask(src);
        assert_eq!(m.code[0].trim(), "let x = 1;");
        assert!(m.comments[0].contains("still comment"));
    }

    #[test]
    fn string_contents_are_blanked_delimiters_kept() {
        let code = code_of(r#"let s = "contains .unwrap() and // no comment";"#);
        assert!(!code[0].contains("unwrap"));
        assert!(!code[0].contains("//"));
        assert_eq!(code[0].matches('"').count(), 2);
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let code = code_of(r#"let s = "a\"b"; let t = 1;"#);
        assert!(code[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_ignore_escapes_and_inner_quotes() {
        let src = "let s = r#\"has \"quotes\" and \\ backslash\"#; let t = 1;\n";
        let code = code_of(src);
        assert!(code[0].contains("let t = 1;"), "{:?}", code[0]);
        assert!(!code[0].contains("quotes"));
    }

    #[test]
    fn multi_hash_raw_strings_only_close_on_matching_hashes() {
        let src = "let s = r##\"inner \"# still inside\"##; let t = 1;\n";
        let code = code_of(src);
        assert!(code[0].contains("let t = 1;"), "{:?}", code[0]);
        assert!(!code[0].contains("still inside"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let code =
            code_of("let s = b\"bytes .unwrap()\"; let r = br#\"raw .unwrap()\"#; let t = 1;\n");
        assert!(!code[0].contains("unwrap"));
        assert!(code[0].contains("let t = 1;"), "{:?}", code[0]);
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let code = code_of("let var\" = 1;\n".replace('"', "").as_str());
        assert!(code[0].contains("var"));
        let code = code_of("let expr = ptr.cast::<u8>();\n");
        assert!(code[0].contains("cast"));
    }

    #[test]
    fn raw_string_after_keyword_is_detected() {
        // Regression: the adjacency guard used the last *non-space* code
        // char, so `return r"..."` read as a normal string and the embedded
        // backslash swallowed the closing quote, desyncing the whole file.
        let src = "fn p() -> &'static str { return r\"a\\\"; }\nlet t = 1;\n";
        let code = code_of(src);
        assert!(code[0].trim_end().ends_with('}'), "{:?}", code[0]);
        assert!(code[1].contains("let t = 1;"), "{:?}", code[1]);
    }

    #[test]
    fn raw_string_after_keyword_masks_inner_quotes() {
        let src = "fn p() -> &'static str { return r#\"has \"quotes\"\"#; }\nlet t = 1;\n";
        let code = code_of(src);
        assert!(!code[0].contains("quotes"), "{:?}", code[0]);
        assert!(code[1].contains("let t = 1;"), "{:?}", code[1]);
    }

    #[test]
    fn raw_byte_string_after_keyword_is_detected() {
        let src = "fn p() -> &'static [u8] { return br\"a\\\"; }\nx.unwrap();\n";
        let code = code_of(src);
        assert!(code[1].contains("x.unwrap();"), "{:?}", code[1]);
    }

    #[test]
    fn byte_char_quote_literal_does_not_open_a_string() {
        // Regression: `b'"'` used to leave the scanner stuck in Str state,
        // swallowing the rest of the file.
        let src = "let q = b'\"'; let x: Option<u32> = None; x.unwrap();\n";
        let code = code_of(src);
        assert!(code[0].contains("x.unwrap();"), "{:?}", code[0]);
    }

    #[test]
    fn byte_char_literals_are_blanked() {
        let code = code_of("let a = b'x'; let b = b'\\n'; let t = 1;\n");
        assert!(!code[0].contains('x'), "{:?}", code[0]);
        assert!(code[0].contains("let t = 1;"));
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let src = "let q = '\"'; let t = 1;\n";
        let code = code_of(src);
        assert!(code[0].contains("let t = 1;"), "{:?}", code[0]);
    }

    #[test]
    fn lifetimes_survive_in_the_code_channel() {
        let code = code_of("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert_eq!(code[0].matches('\'').count(), 3);
    }

    #[test]
    fn cfg_test_regions_are_marked_through_the_closing_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let m = mask(src);
        assert_eq!(m.test[0..6], [false, true, true, true, true, false]);
    }

    #[test]
    fn macro_rules_bodies_are_marked() {
        let src = "macro_rules! m {\n    () => {};\n}\nfn after() {}\n";
        let m = mask(src);
        assert_eq!(m.macro_body[0..3], [true, true, true]);
        assert!(!m.macro_body[3]);
    }
}
