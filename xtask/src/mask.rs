//! Source masking: separates Rust code from comments and string contents so
//! the rules in [`crate::rules`] never fire on text inside a string literal
//! or a comment, and computes the regions (test modules, `macro_rules!`
//! bodies) that individual rules skip.
//!
//! This is a hand-rolled scanner, not a full parser: the build environment
//! is offline, so `syn` is unavailable. The scanner understands exactly the
//! lexical structure needed to mask reliably — line/block (nested) comments,
//! string/raw-string/byte-string literals, char literals vs lifetimes — and
//! leaves everything else untouched.

/// One source file, split into per-line code and comment channels.
#[derive(Debug)]
pub struct MaskedFile {
    /// Line text with comments and string *contents* blanked to spaces
    /// (string delimiters are kept so call structure stays visible).
    pub code: Vec<String>,
    /// Line text of comments only (code blanked); used to find
    /// `iprism-lint: allow(...)` directives.
    pub comments: Vec<String>,
    /// Original line text, used for doc-comment lookup.
    pub original: Vec<String>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` item regions.
    pub test: Vec<bool>,
    /// `true` for lines inside `macro_rules!` bodies.
    pub macro_body: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Masks `source` into code/comment channels and marks skip regions.
pub fn mask(source: &str) -> MaskedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    let mut state = State::Code;
    let mut i = 0;
    let mut prev_code_char = ' ';

    macro_rules! code_push {
        ($c:expr) => {{
            let c: char = $c;
            code.last_mut().expect("line buffer").push(c);
            comments.last_mut().expect("line buffer").push(' ');
            if c != ' ' {
                prev_code_char = c;
            }
        }};
    }
    macro_rules! comment_push {
        ($c:expr) => {{
            code.last_mut().expect("line buffer").push(' ');
            comments.last_mut().expect("line buffer").push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push(String::new());
            comments.push(String::new());
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment_push!('/');
                    comment_push!('/');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    comment_push!('/');
                    comment_push!('*');
                    i += 2;
                } else if c == '"' {
                    code_push!('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_start(&chars, i, prev_code_char) {
                    // r"...", r#"..."#, br"..." — blank the prefix, keep a quote.
                    let prefix_len = chars[i..].iter().take_while(|&&c| c != '"').count();
                    for _ in 0..prefix_len {
                        code_push!(' ');
                    }
                    code_push!('"');
                    state = State::RawStr(hashes);
                    i += prefix_len + 1;
                } else if c == '\'' && !is_ident_char(prev_code_char) && prev_code_char != '\'' {
                    i = consume_char_or_lifetime(&chars, i, |ch| code_push!(ch));
                } else {
                    code_push!(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_push!(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    comment_push!('/');
                    comment_push!('*');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    comment_push!('*');
                    comment_push!('/');
                    i += 2;
                } else {
                    comment_push!(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_push!(' ');
                    if chars.get(i + 1).is_some_and(|&n| n != '\n') {
                        code_push!(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    code_push!('"');
                    state = State::Code;
                    i += 1;
                } else {
                    code_push!(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    code_push!('"');
                    for _ in 0..hashes {
                        code_push!(' ');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code_push!(' ');
                    i += 1;
                }
            }
        }
    }

    let original: Vec<String> = source.split('\n').map(str::to_string).collect();
    debug_assert_eq!(original.len(), code.len());
    let test = mark_attr_regions(&code);
    let macro_body = mark_macro_regions(&code);
    MaskedFile {
        code,
        comments,
        original,
        test,
        macro_body,
    }
}

/// Returns `Some(hash_count)` when position `i` starts a raw (byte) string.
fn raw_string_start(chars: &[char], i: usize, prev_code_char: char) -> Option<u32> {
    if is_ident_char(prev_code_char) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Consumes either a char literal (blanked) or a lifetime tick (kept) at
/// `chars[i] == '\''`; returns the next index.
fn consume_char_or_lifetime(chars: &[char], i: usize, mut emit: impl FnMut(char)) -> usize {
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: scan to the closing quote.
        let mut j = i + 2;
        // Skip the escaped character itself so '\'' terminates correctly.
        if j < chars.len() {
            j += 1;
        }
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            j += 1;
        }
        let end = (j + 1).min(chars.len());
        for _ in i..end {
            emit(' ');
        }
        end
    } else if chars.get(i + 2) == Some(&'\'') {
        // Plain one-char literal like 'x' (works for multi-byte chars since
        // we iterate over chars, not bytes).
        emit(' ');
        emit(' ');
        emit(' ');
        i + 3
    } else {
        // A lifetime: keep the tick as code.
        emit('\'');
        i + 1
    }
}

/// Marks line regions covered by `#[cfg(test)]` / `#[test]` attributes by
/// brace-matching the item that follows the attribute.
fn mark_attr_regions(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    for start in 0..code.len() {
        let line = &code[start];
        let is_test_attr = line.contains("cfg(test)")
            || line.contains("cfg(all(test")
            || line.contains("cfg(any(test")
            || has_bare_test_attr(line);
        if is_test_attr {
            mark_item(code, start, &mut marked);
        }
    }
    marked
}

fn has_bare_test_attr(line: &str) -> bool {
    line.contains("#[test]") || line.contains("#[ignore]")
}

/// Marks `macro_rules!` bodies; rules that reason about item structure
/// (doc coverage) skip them since macro bodies are templates, not items.
fn mark_macro_regions(code: &[String]) -> Vec<bool> {
    let mut marked = vec![false; code.len()];
    for start in 0..code.len() {
        if code[start].contains("macro_rules!") && !marked[start] {
            mark_item(code, start, &mut marked);
        }
    }
    marked
}

/// Marks from `start` to the end of the item that begins there: through the
/// matching `}` of the first `{`, or through the first `;` outside brackets
/// if it appears before any brace (e.g. `#[cfg(test)] use foo;`).
fn mark_item(code: &[String], start: usize, marked: &mut [bool]) {
    let mut brace = 0i32;
    let mut bracket = 0i32;
    let mut seen_brace = false;
    for (offset, line) in code[start..].iter().enumerate() {
        marked[start + offset] = true;
        for c in line.chars() {
            match c {
                '[' => bracket += 1,
                ']' => bracket -= 1,
                '{' => {
                    brace += 1;
                    seen_brace = true;
                }
                '}' => {
                    brace -= 1;
                    if seen_brace && brace == 0 {
                        return;
                    }
                }
                ';' if !seen_brace && brace == 0 && bracket == 0 => return,
                _ => {}
            }
        }
    }
}
