//! `cargo xtask` — workspace automation entry point.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <task>\n\n\
         tasks:\n  \
         lint    run the iPrism custom lints over every workspace .rs file\n\n\
         lint rules: no-panic-in-lib, no-float-eq, no-wallclock-in-sim, pub-fn-docs\n\
         waive a finding with `// iprism-lint: allow(<rule>)` on or above the line"
    );
}

fn lint() -> ExitCode {
    // xtask lives one level below the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf();
    match xtask::run_lint(&root) {
        Ok((checked, diagnostics)) => {
            for d in &diagnostics {
                println!("{d}");
            }
            if diagnostics.is_empty() {
                println!("xtask lint: {checked} files checked, no violations");
                ExitCode::SUCCESS
            } else {
                println!(
                    "xtask lint: {checked} files checked, {} violation(s)",
                    diagnostics.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("xtask lint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}
