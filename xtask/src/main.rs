//! `cargo xtask` — workspace automation entry point.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-sti") => run_bench_bin("bench_sti", "bench-sti", &args[1..]),
        Some("bench-train") => run_bench_bin("bench_train", "bench-train", &args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <task>\n\n\
         tasks:\n  \
         lint [--ast|--graph|--flow] [--json]\n                          \
         run the iPrism custom lints over every workspace .rs file\n  \
         bench-sti [PATH]        time the STI hot path and write BENCH_STI.json (repo root,\n                          \
         or PATH) with the speedup over the recorded baseline\n  \
         bench-train [--smoke] [PATH]\n                          \
         time D-DQN training (gradient updates + end-to-end train_smc)\n                          \
         and write BENCH_TRAIN.json with the speedup over the recorded\n                          \
         baseline; --smoke runs one untimed iteration (CI)\n\n\
         flags:\n  \
         --ast    run the AST-level rules (determinism, dimensional safety, NaN hygiene,\n           \
         dead-waiver audit) instead of the text rules\n  \
         --graph  build the workspace call graph and certify `// iprism: hot-path(...)`\n           \
         markers (no-panic, no-alloc, deterministic) by taint propagation\n  \
         --flow   run forward dataflow over per-function CFGs: unit-dimension tracking\n           \
         and parallel-determinism analysis\n  \
         --json   emit machine-readable JSON instead of human-readable diagnostics\n\n\
         text rules:  no-panic-in-lib, no-float-eq, no-wallclock-in-sim, pub-fn-docs\n\
         ast rules:   no-hash-collections, no-unseeded-rng, raw-f64-param, raw-f64-return,\n             \
         angle-conv-outside-units, partial-cmp-unwrap, unguarded-float-div,\n             \
         float-int-cast, world-step-outside-sim, dead-waiver\n\
         graph rules: hot-path-panic, hot-path-alloc, hot-path-nondet, hot-path-marker,\n             \
         dead-waiver\n\
         flow rules:  unit-mixed-dim, unit-raw-reentry, unit-angle-raw, par-float-accum,\n             \
         par-shared-mut, unordered-reduce, dead-waiver\n\
         waive a finding with `// iprism-lint: allow(<rule>)` on or above the line\n\
         (see docs/STATIC_ANALYSIS.md for the full catalogue)"
    );
}

fn workspace_root() -> PathBuf {
    // xtask lives one level below the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf()
}

fn lint(flags: &[String]) -> ExitCode {
    let mut ast = false;
    let mut graph = false;
    let mut flow = false;
    let mut json = false;
    for flag in flags {
        match flag.as_str() {
            "--ast" => ast = true,
            "--graph" => graph = true,
            "--flow" => flow = true,
            "--json" => json = true,
            other => {
                eprintln!("xtask lint: unknown flag `{other}`\n");
                print_usage();
                return ExitCode::from(2);
            }
        }
    }
    if usize::from(ast) + usize::from(graph) + usize::from(flow) > 1 {
        eprintln!("xtask lint: `--ast`, `--graph` and `--flow` are separate passes; pick one\n");
        print_usage();
        return ExitCode::from(2);
    }
    let root = workspace_root();
    if graph {
        graph_lint(&root, json)
    } else if flow {
        flow_lint(&root, json)
    } else if ast {
        ast_lint(&root, json)
    } else {
        text_lint(&root, json)
    }
}

/// Builds and runs a bench reporter binary in release mode, forwarding any
/// extra arguments (e.g. `--smoke`, or a PATH overriding the output file).
fn run_bench_bin(bin: &str, task: &str, args: &[String]) -> ExitCode {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(workspace_root())
        .args(["run", "--release", "-p", "iprism-bench", "--bin", bin, "--"])
        .args(args)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!("xtask {task}: failed to launch cargo: {err}");
            ExitCode::from(2)
        }
    }
}

fn text_lint(root: &Path, json: bool) -> ExitCode {
    match xtask::run_lint(root) {
        Ok((checked, diagnostics)) => {
            if json {
                // Text diagnostics have no column; report col 1.
                let items: Vec<String> = diagnostics
                    .iter()
                    .map(|d| {
                        xtask::ast::diagnostic_json(&d.path, d.line, 1, d.rule.name(), &d.message)
                    })
                    .collect();
                println!("{}", xtask::ast::render_report(checked, &[], &items));
            } else {
                for d in &diagnostics {
                    println!("{d}");
                }
            }
            summary("lint", checked, diagnostics.len(), json)
        }
        Err(err) => {
            eprintln!("xtask lint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

fn ast_lint(root: &Path, json: bool) -> ExitCode {
    match xtask::run_ast_lint(root) {
        Ok((checked, diagnostics)) => {
            if json {
                println!("{}", xtask::ast::report_json(checked, &diagnostics));
            } else {
                for d in &diagnostics {
                    println!("{d}");
                }
            }
            summary("lint --ast", checked, diagnostics.len(), json)
        }
        Err(err) => {
            eprintln!("xtask lint --ast: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

fn graph_lint(root: &Path, json: bool) -> ExitCode {
    match xtask::run_graph_lint(root) {
        Ok(report) => {
            let s = report.stats;
            if json {
                println!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "xtask lint --graph: {} files, {} functions, {} edges ({} unresolved), \
                     {} hot-path marker(s)",
                    s.files, s.functions, s.edges, s.unresolved, s.markers
                );
            }
            summary("lint --graph", s.files, report.diagnostics.len(), json)
        }
        Err(err) => {
            eprintln!("xtask lint --graph: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

fn flow_lint(root: &Path, json: bool) -> ExitCode {
    match xtask::run_flow_lint(root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "xtask lint --flow: {} files, {} functions analysed",
                    report.files, report.functions
                );
            }
            summary("lint --flow", report.files, report.diagnostics.len(), json)
        }
        Err(err) => {
            eprintln!("xtask lint --flow: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

fn summary(task: &str, checked: usize, violations: usize, json: bool) -> ExitCode {
    if violations == 0 {
        if !json {
            println!("xtask {task}: {checked} files checked, no violations");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            println!("xtask {task}: {checked} files checked, {violations} violation(s)");
        }
        ExitCode::FAILURE
    }
}
