//! Workspace automation library behind `cargo xtask`.
//!
//! The flagship task is `cargo xtask lint`, a custom static-analysis pass
//! over every workspace `.rs` file. It has two layers:
//!
//! * **Text rules** (the default; [`rules::Rule`]) — line-oriented checks:
//!   `no-panic-in-lib`, `no-float-eq`, `no-wallclock-in-sim`, `pub-fn-docs`.
//! * **AST rules** (`cargo xtask lint --ast`; [`ast::AstRule`]) — token- and
//!   signature-level checks for determinism (`no-hash-collections`,
//!   `no-unseeded-rng`), dimensional safety (`raw-f64-param`,
//!   `raw-f64-return`, `angle-conv-outside-units`) and NaN hygiene
//!   (`partial-cmp-unwrap`, `unguarded-float-div`, `float-int-cast`).
//! * **Graph rules** (`cargo xtask lint --graph`) — workspace call-graph
//!   taint propagation certifying `// iprism: hot-path(...)` markers.
//! * **Flow rules** (`cargo xtask lint --flow`; [`ast::flow`]) — forward
//!   dataflow over per-function CFGs: unit-dimension tracking
//!   (`unit-mixed-dim`, `unit-raw-reentry`, `unit-angle-raw`) and
//!   parallel-determinism analysis (`par-float-accum`, `par-shared-mut`,
//!   `unordered-reduce`).
//!
//! Both layers are documented in `docs/STATIC_ANALYSIS.md` and
//! `docs/INVARIANTS.md`. Violations can be locally waived with a justifying
//! comment: `// iprism-lint: allow(<rule>[, <rule>...])` on, or directly
//! above, the offending line.

pub mod ast;
pub mod mask;
pub mod rules;

use std::path::{Path, PathBuf};

pub use ast::flow::{flow_lint_source, flow_lint_source_counted, run_flow_lint, FlowReport};
pub use ast::graph::{
    build_graph_sources, build_workspace_graph, graph_lint_sources, run_graph_lint, CallGraph,
    DepClosure, GraphReport, GraphStats,
};
pub use ast::{
    ast_lint_source, classify_ast, run_ast_lint, AstDiagnostic, AstRule, ALL_AST_RULES, FLOW_RULES,
    SCHEMA_VERSION,
};
pub use rules::{Diagnostic, FileClass, Rule, ALL_RULES};

/// Crates whose library code must never panic (reach/risk math must degrade
/// gracefully, not abort the vehicle stack).
const PANIC_BANNED_CRATES: [&str; 6] = [
    "crates/geom/",
    "crates/dynamics/",
    "crates/reach/",
    "crates/risk/",
    "crates/sim/",
    "crates/core/",
];

/// Crates whose code must be deterministic (no wall clock, no entropy).
const WALLCLOCK_BANNED_CRATES: [&str; 2] = ["crates/sim/", "crates/scenarios/"];

/// Lints a single source string as if it lived at `rel_path` (workspace
/// relative, forward slashes). This is the entry point the fixture tests
/// use; [`run_lint`] maps it over the real tree.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let masked = mask::mask(source);
    rules::lint_masked(rel_path, &masked, class)
}

/// Decides which rule families apply to `rel_path`; `None` means the file
/// is skipped entirely (test binaries, benches, build scripts, fixtures).
#[must_use]
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let skip = rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
        || rel_path.contains("/fixtures/")
        || rel_path.ends_with("build.rs")
        || rel_path.starts_with("target/")
        || rel_path.contains("/target/");
    if skip {
        return None;
    }
    Some(FileClass {
        panic_banned: PANIC_BANNED_CRATES.iter().any(|p| rel_path.starts_with(p)),
        wallclock_banned: WALLCLOCK_BANNED_CRATES
            .iter()
            .any(|p| rel_path.starts_with(p)),
    })
}

/// Recursively collects workspace `.rs` files under `root`, pruning VCS and
/// build-output directories. Paths come back sorted for stable output.
///
/// # Errors
///
/// Returns any I/O error encountered while walking the tree.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every workspace `.rs` file under `workspace_root`.
///
/// Returns `(files_checked, diagnostics)`.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn run_lint(workspace_root: &Path) -> std::io::Result<(usize, Vec<Diagnostic>)> {
    let mut checked = 0usize;
    let mut diagnostics = Vec::new();
    for path in collect_rust_files(workspace_root)? {
        let rel = path
            .strip_prefix(workspace_root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        checked += 1;
        diagnostics.extend(lint_source(&rel, &source));
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok((checked, diagnostics))
}
