//! The four iPrism workspace lint rules.
//!
//! Every rule reports `file:line` diagnostics and honours the
//! `// iprism-lint: allow(<rule>)` escape hatch, which suppresses a rule on
//! the comment's own line and — when the comment stands alone — on the next
//! code line. See `docs/INVARIANTS.md` for the rationale behind each rule.

use crate::mask::{is_ident_char, MaskedFile};

/// The lint rules enforced by `cargo xtask lint`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in non-test
    /// library code of the numeric core crates.
    NoPanicInLib,
    /// No `==`/`!=` on floating-point operands outside tests.
    NoFloatEq,
    /// No wall-clock time or entropy-seeded RNGs in sim/scenario code.
    NoWallclockInSim,
    /// Every `pub fn` carries a doc comment.
    PubFnDocs,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 4] = [
    Rule::NoPanicInLib,
    Rule::NoFloatEq,
    Rule::NoWallclockInSim,
    Rule::PubFnDocs,
];

impl Rule {
    /// The kebab-case name used in diagnostics and `allow(...)` directives.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => "no-panic-in-lib",
            Rule::NoFloatEq => "no-float-eq",
            Rule::NoWallclockInSim => "no-wallclock-in-sim",
            Rule::PubFnDocs => "pub-fn-docs",
        }
    }

    /// Parses a rule name as written inside `allow(...)`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a given file (decided from its path).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// File belongs to a numeric core crate where panicking is banned.
    pub panic_banned: bool,
    /// File belongs to sim/scenario code where wall-clock time is banned.
    pub wallclock_banned: bool,
}

/// Runs every applicable rule over one masked file, honouring
/// `iprism-lint: allow(...)` waivers.
#[must_use]
pub fn lint_masked(path: &str, file: &MaskedFile, class: FileClass) -> Vec<Diagnostic> {
    lint_masked_inner(path, file, class, true)
}

/// Like [`lint_masked`] but *ignores* waivers: the dead-waiver audit needs
/// to know what would fire if a directive were removed.
#[must_use]
pub fn lint_masked_raw(path: &str, file: &MaskedFile, class: FileClass) -> Vec<Diagnostic> {
    lint_masked_inner(path, file, class, false)
}

fn lint_masked_inner(
    path: &str,
    file: &MaskedFile,
    class: FileClass,
    honour_waivers: bool,
) -> Vec<Diagnostic> {
    let allows = allow_directives(file);
    let mut out = Vec::new();
    let mut push = |line: usize, rule: Rule, message: String| {
        if !honour_waivers || !allowed(&allows, file, line, rule) {
            out.push(Diagnostic {
                path: path.to_string(),
                line: line + 1,
                rule,
                message,
            });
        }
    };

    for (idx, code) in file.code.iter().enumerate() {
        if file.test[idx] {
            continue;
        }
        if class.panic_banned {
            check_no_panic(code, idx, &mut push);
        }
        check_no_float_eq(code, idx, &mut push);
        if class.wallclock_banned {
            check_no_wallclock(code, idx, &mut push);
        }
        if !file.macro_body[idx] {
            check_pub_fn_docs(file, idx, &mut push);
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Per-line sets of rules suppressed via `iprism-lint: allow(...)`.
fn allow_directives(file: &MaskedFile) -> Vec<Vec<Rule>> {
    file.comments
        .iter()
        .map(|comment| parse_allow(comment))
        .collect()
}

fn parse_allow(comment: &str) -> Vec<Rule> {
    let Some(pos) = comment.find("iprism-lint:") else {
        return Vec::new();
    };
    let rest = &comment[pos + "iprism-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let args = &rest[open + "allow(".len()..];
    let Some(close) = args.find(')') else {
        return Vec::new();
    };
    let mut rules = Vec::new();
    for name in args[..close].split(',') {
        let name = name.trim();
        if name == "all" {
            return ALL_RULES.to_vec();
        }
        if let Some(rule) = Rule::from_name(name) {
            rules.push(rule);
        }
    }
    rules
}

/// A rule is suppressed on line `idx` if an allow directive sits on the
/// line itself or on a contiguous run of comment-only lines directly above.
fn allowed(allows: &[Vec<Rule>], file: &MaskedFile, idx: usize, rule: Rule) -> bool {
    if allows[idx].contains(&rule) {
        return true;
    }
    let mut l = idx;
    while l > 0 {
        l -= 1;
        let comment_only = file.code[l].trim().is_empty() && !file.comments[l].trim().is_empty();
        if !comment_only {
            return false;
        }
        if allows[l].contains(&rule) {
            return true;
        }
    }
    false
}

/// Iterates identifier-like words in a code line as `(start, end)` spans.
fn words(code: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = code.chars().collect();
    let mut spans = Vec::new();
    let mut start = None;
    for (i, &c) in chars.iter().enumerate() {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            spans.push((s, i));
        }
    }
    if let Some(s) = start {
        spans.push((s, chars.len()));
    }
    spans
}

fn char_at(chars: &[char], i: usize) -> char {
    chars.get(i).copied().unwrap_or(' ')
}

fn next_nonspace(chars: &[char], mut i: usize) -> char {
    while char_at(chars, i) == ' ' && i < chars.len() {
        i += 1;
    }
    char_at(chars, i)
}

fn prev_nonspace(chars: &[char], i: usize) -> char {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if chars[j] != ' ' {
            return chars[j];
        }
    }
    ' '
}

fn check_no_panic(code: &str, idx: usize, push: &mut impl FnMut(usize, Rule, String)) {
    let chars: Vec<char> = code.chars().collect();
    for (s, e) in words(code) {
        let word: String = chars[s..e].iter().collect();
        match word.as_str() {
            "unwrap" | "expect"
                // Only method-call position (`.unwrap()`), so `#[expect(...)]`
                // attributes and `unwrap_or` relatives never match.
                if prev_nonspace(&chars, s) == '.' && next_nonspace(&chars, e) == '(' => {
                    push(
                        idx,
                        Rule::NoPanicInLib,
                        format!(
                            "`.{word}()` in library code; return a Result, use \
                             `total_cmp`/`unwrap_or`, or justify with \
                             `// iprism-lint: allow(no-panic-in-lib)`"
                        ),
                    );
                }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next_nonspace(&chars, e) == '!' => {
                    push(
                        idx,
                        Rule::NoPanicInLib,
                        format!("`{word}!` in library code; make the failure a Result or an invariant contract"),
                    );
                }
            _ => {}
        }
    }
}

fn check_no_float_eq(code: &str, idx: usize, push: &mut impl FnMut(usize, Rule, String)) {
    let chars: Vec<char> = code.chars().collect();
    let n = chars.len();
    for i in 0..n.saturating_sub(1) {
        let pair = (chars[i], chars[i + 1]);
        let is_eq = pair == ('=', '=');
        let is_ne = pair == ('!', '=');
        if !is_eq && !is_ne {
            continue;
        }
        // Not part of `<=`, `>=`, `..=`, `=>`, `!=` second char, etc.
        let before = if i > 0 { chars[i - 1] } else { ' ' };
        let after = char_at(&chars, i + 2);
        if is_eq
            && (matches!(
                before,
                '<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '.'
            ) || after == '=')
        {
            continue;
        }
        if is_ne && after == '=' {
            continue;
        }
        let left = operand_window(&chars[..i], true);
        let right = operand_window(&chars[i + 2..], false);
        if float_like(&left) || float_like(&right) {
            let op = if is_eq { "==" } else { "!=" };
            push(
                idx,
                Rule::NoFloatEq,
                format!(
                    "float `{op}` comparison (`{} {op} {}`); compare with an \
                     epsilon, `total_cmp`, or bit patterns",
                    left.trim(),
                    right.trim()
                ),
            );
        }
    }
}

/// Extracts the operand text adjacent to a comparison operator, stopping at
/// expression delimiters and boolean connectives.
fn operand_window(chars: &[char], leftward: bool) -> String {
    let stop = |c: char| {
        matches!(
            c,
            ',' | ';' | '(' | ')' | '[' | ']' | '{' | '}' | '=' | '<' | '>' | '!'
        )
    };
    let mut out: Vec<char> = Vec::new();
    if leftward {
        let mut prev = ' ';
        for &c in chars.iter().rev() {
            if stop(c) || (c == '&' && prev == '&') || (c == '|' && prev == '|') {
                break;
            }
            out.push(c);
            prev = c;
        }
        out.reverse();
        // `&&` lookahead above needs one-char delay; drop a trailing lone
        // `&`/`|` left over from a connective.
        while matches!(out.first(), Some('&' | '|' | ' ')) {
            out.remove(0);
        }
    } else {
        let mut prev = ' ';
        for &c in chars.iter() {
            if stop(c) || (c == '&' && prev == '&') || (c == '|' && prev == '|') {
                break;
            }
            out.push(c);
            prev = c;
        }
        while matches!(out.last(), Some('&' | '|' | ' ')) {
            out.pop();
        }
    }
    out.into_iter().collect()
}

/// Heuristic: does this operand text look like a floating-point expression?
fn float_like(text: &str) -> bool {
    if text.contains("f64") || text.contains("f32") {
        return true;
    }
    has_float_literal(text)
}

fn has_float_literal(text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    for i in 1..chars.len() {
        if chars[i] == '.'
            && chars[i - 1].is_ascii_digit()
            && chars
                .get(i + 1)
                .is_none_or(|c| c.is_ascii_digit() || !is_ident_char(*c) && *c != '.')
        {
            // Walk back over the integer part; a float literal's digits must
            // not be preceded by an identifier char or `.` (which would make
            // this a tuple-field access like `pair.0`).
            let mut j = i - 1;
            while j > 0 && (chars[j - 1].is_ascii_digit() || chars[j - 1] == '_') {
                j -= 1;
            }
            let lead = if j == 0 { ' ' } else { chars[j - 1] };
            if !is_ident_char(lead) && lead != '.' {
                return true;
            }
        }
    }
    false
}

fn check_no_wallclock(code: &str, idx: usize, push: &mut impl FnMut(usize, Rule, String)) {
    let chars: Vec<char> = code.chars().collect();
    for (s, e) in words(code) {
        let word: String = chars[s..e].iter().collect();
        if matches!(
            word.as_str(),
            "Instant" | "SystemTime" | "thread_rng" | "from_entropy"
        ) {
            push(
                idx,
                Rule::NoWallclockInSim,
                format!(
                    "`{word}` in simulation code; sims must be deterministic — \
                     use the step counter and seeded RNGs"
                ),
            );
        }
    }
}

fn check_pub_fn_docs(file: &MaskedFile, idx: usize, push: &mut impl FnMut(usize, Rule, String)) {
    let code = &file.code[idx];
    let chars: Vec<char> = code.chars().collect();
    for (s, e) in words(code) {
        let word: String = chars[s..e].iter().collect();
        if word != "pub" {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if next_nonspace(&chars, e) == '(' {
            continue;
        }
        // Find the keyword chain after `pub`: [const|async|unsafe]* fn.
        let mut rest = words(code)
            .into_iter()
            .filter(|&(ws, _)| ws >= e)
            .map(|(ws, we)| chars[ws..we].iter().collect::<String>());
        let mut next = rest.next();
        while matches!(next.as_deref(), Some("const" | "async" | "unsafe")) {
            next = rest.next();
        }
        if next.as_deref() != Some("fn") {
            continue;
        }
        let name = rest.next().unwrap_or_default();
        if !is_documented(file, idx) {
            push(
                idx,
                Rule::PubFnDocs,
                format!("public function `{name}` has no doc comment"),
            );
        }
        // One `pub fn` per line is the overwhelmingly common case; stop so a
        // single line never double-reports.
        break;
    }
}

/// Walks upward from the line above a `pub fn`, skipping attributes, until a
/// doc comment or something else is found.
fn is_documented(file: &MaskedFile, idx: usize) -> bool {
    let mut l = idx;
    while l > 0 {
        l -= 1;
        let original = file.original[l].trim();
        if original.starts_with("///")
            || original.starts_with("#[doc")
            || original.starts_with("/**")
        {
            return true;
        }
        let is_attr_start = original.starts_with("#[");
        let is_attr_tail = original.ends_with(']') && !original.contains('{');
        // Plain comments (e.g. `// iprism-lint: allow(...)` directives) may
        // sit between the doc comment and the item; keep walking.
        if is_attr_start || is_attr_tail || original.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}
