//! # iPrism
//!
//! A Rust reproduction of **"iPrism: Characterize and Mitigate Risk by
//! Quantifying Change in Escape Routes"** (Cui et al., DSN 2024).
//!
//! iPrism quantifies the risk other road users pose to an autonomous
//! vehicle as the *change in its escape routes* — the Safety-Threat
//! Indicator (STI), computed by counterfactual reach-tube analysis — and
//! mitigates that risk with a Double-DQN *Safety-hazard Mitigation
//! Controller* (SMC) that brakes or accelerates before the situation
//! becomes unrecoverable.
//!
//! This crate is the umbrella over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geom`] | `iprism-geom` | 2-D geometry (vectors, OBBs, occupancy grids) |
//! | [`dynamics`] | `iprism-dynamics` | bicycle model, CVTR prediction, trajectories |
//! | [`map`] | `iprism-map` | lanes, straight roads, roundabouts, drivable area |
//! | [`sim`] | `iprism-sim` | deterministic 2-D driving simulator (CARLA substitute) |
//! | [`reach`] | `iprism-reach` | Algorithm 1: sampled reach-tubes |
//! | [`risk`] | `iprism-risk` | STI + baselines (TTC, Dist-CIPA, PKL), LTFMA |
//! | [`nn`] | `iprism-nn` | minimal MLP + backprop + Adam |
//! | [`rl`] | `iprism-rl` | Double-DQN trainer |
//! | [`agents`] | `iprism-agents` | LBC/RIP surrogates, TTC-ACA, mitigation arbiter |
//! | [`scenarios`] | `iprism-scenarios` | NHTSA typologies, benign traffic, case studies |
//! | [`core`] | `iprism-core` | the iPrism framework (SMC training + inference) |
//! | [`eval`] | `iprism-eval` | the paper's tables & figures as experiments |
//!
//! # Quickstart
//!
//! ```
//! use iprism::prelude::*;
//!
//! // A cut-in moment: the ego at 10 m/s, an actor swerving in 15 m ahead.
//! let map = RoadMap::straight_road(2, 3.5, 400.0);
//! let ego = VehicleState::new(100.0, 1.75, 0.0, 10.0);
//! let intruder = Trajectory::from_states(
//!     Seconds::new(0.0),
//!     Seconds::new(2.5),
//!     vec![VehicleState::new(115.0, 1.75, 0.0, 2.0); 2],
//! );
//! let scene = SceneSnapshot::new(0.0, ego, (4.6, 2.0))
//!     .with_actor(SceneActor::new(ActorId(1), intruder, 4.6, 2.0));
//!
//! let sti = StiEvaluator::default().evaluate(&map, &scene);
//! assert!(sti.combined > 0.1); // escape routes are shrinking
//! ```

#![warn(missing_docs)]

pub use iprism_agents as agents;
pub use iprism_core as core;
pub use iprism_dynamics as dynamics;
pub use iprism_eval as eval;
pub use iprism_geom as geom;
pub use iprism_map as map;
pub use iprism_nn as nn;
pub use iprism_reach as reach;
pub use iprism_risk as risk;
pub use iprism_rl as rl;
pub use iprism_scenarios as scenarios;
pub use iprism_sim as sim;
pub use iprism_units as units;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use iprism_agents::{
        AcaController, EpisodeAgent, LbcAgent, MitigatedAgent, MitigationAction, MitigationPolicy,
        RipAgent,
    };
    pub use iprism_core::{train_smc, Iprism, Smc, SmcTrainConfig};
    pub use iprism_dynamics::{BicycleModel, ControlInput, CvtrModel, Trajectory, VehicleState};
    pub use iprism_geom::{Obb, Pose, Vec2};
    pub use iprism_map::{LaneId, RoadMap};
    pub use iprism_reach::{compute_reach_tube, Obstacle, ReachConfig};
    pub use iprism_risk::{RiskMetric, RiskScore, SceneActor, SceneSnapshot, Sti, StiEvaluator};
    pub use iprism_scenarios::{sample_instances, ScenarioSpec, Typology};
    pub use iprism_sim::{
        run_episode, Actor, ActorId, Behavior, EgoController, Episode, EpisodeConfig,
        EpisodeOutcome, Goal, World,
    };
    pub use iprism_units::{Meters, MetersPerSecond, Radians, Seconds};
}
