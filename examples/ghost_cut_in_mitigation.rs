//! Train an SMC on one ghost cut-in scenario and watch it save the LBC
//! baseline across a sweep of held-out instances — the paper's headline
//! Table-III effect, end to end.
//!
//! Run with: `cargo run --release --example ghost_cut_in_mitigation`

use iprism::prelude::*;

fn main() {
    // 1. Pick a scenario that reliably defeats the LBC baseline.
    let train_spec = ScenarioSpec::new(Typology::GhostCutIn, vec![25.2, 5.6, 10.5], 0);
    {
        let mut world = train_spec.build_world();
        let mut lbc = LbcAgent::default();
        let r = run_episode(&mut world, &mut lbc, &train_spec.episode_config());
        println!("LBC on the training scenario: {:?}", r.outcome);
    }

    // 2. Train the Safety-hazard Mitigation Controller (100 episodes, as in
    //    the paper).
    println!("training SMC (100 episodes)...");
    let t0 = std::time::Instant::now();
    let trained = train_smc(
        vec![(train_spec.build_world(), train_spec.episode_config())],
        LbcAgent::default(),
        &SmcTrainConfig::default(),
    );
    println!("trained in {:?}", t0.elapsed());

    // 3. Evaluate LBC vs LBC+iPrism on held-out instances.
    let iprism = Iprism::new(trained.smc);
    let sweep = sample_instances(Typology::GhostCutIn, 60, 7777);
    let mut lbc_crashes: usize = 0;
    let mut iprism_crashes: usize = 0;
    let mut iprism_goals = 0;
    for spec in &sweep {
        let mut w = spec.build_world();
        let mut lbc = LbcAgent::default();
        if run_episode(&mut w, &mut lbc, &spec.episode_config())
            .outcome
            .is_collision()
        {
            lbc_crashes += 1;
        }

        let mut w = spec.build_world();
        let mut protected = iprism.attach(LbcAgent::default());
        match run_episode(&mut w, &mut protected, &spec.episode_config()).outcome {
            EpisodeOutcome::Collision { .. } => iprism_crashes += 1,
            EpisodeOutcome::ReachedGoal { .. } => iprism_goals += 1,
            EpisodeOutcome::Timeout => {}
        }
    }
    let n = sweep.len();
    println!("\nheld-out sweep ({n} instances):");
    println!("  LBC         collisions: {lbc_crashes}/{n}");
    println!("  LBC+iPrism  collisions: {iprism_crashes}/{n} (goals reached: {iprism_goals})");
    if lbc_crashes > 0 {
        let saved = lbc_crashes.saturating_sub(iprism_crashes);
        println!(
            "  iPrism prevented {:.0}% of the baseline's accidents",
            saved as f64 / lbc_crashes as f64 * 100.0
        );
    }
}
