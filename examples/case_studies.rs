//! Figure 7 walk-through: evaluate per-actor STI on the four real-world
//! style case studies and print which actor dominates each scene's risk.
//!
//! Run with: `cargo run --release --example case_studies`

use iprism::eval::{case_study_report, EvalConfig};
use iprism::scenarios::CaseStudy;

fn main() {
    let report = case_study_report(&EvalConfig::default());
    println!("{report}\n");

    for result in &report.results {
        println!("== {} ==", result.case.name());
        match result.case {
            CaseStudy::PedestrianCrossing => println!(
                "  The crossing pedestrian eliminates the forward escape \
                 routes; it dominates with STI {:.2}.",
                result.per_actor[0].1
            ),
            CaseStudy::OversizedActor => println!(
                "  The truck never crosses the ego's path, yet its overhang \
                 into the ego lane scores STI {:.2} — risk that TTC and \
                 Dist-CIPA are structurally blind to.",
                result.per_actor[0].1
            ),
            CaseStudy::ClutteredStreet => println!(
                "  Exiting actor: STI {:.2} (harmless); entering actor: STI \
                 {:.2}; combined scene risk {:.2}.",
                result.per_actor[0].1, result.per_actor[1].1, result.combined
            ),
            CaseStudy::ActorPullingOut => println!(
                "  The pulling-out car scores STI {:.2}; combined risk {:.2} \
                 as the top-lane traffic removes the alternative routes.",
                result.per_actor[0].1, result.combined
            ),
        }
        println!();
    }
}
