//! Watch the roundabout conflict unfold in ASCII: a ring vehicle fails to
//! yield at the entry exactly as the ego arrives (the §V-C RIP scenario).
//!
//! Run with: `cargo run --release --example roundabout_demo`

use iprism::prelude::*;
use iprism::sim::render_world;

fn main() {
    let spec = sample_instances(Typology::RoundaboutGhostCutIn, 1, 2024).remove(0);
    println!(
        "roundabout ghost cut-in, params {:?} (offset, npc speed, ego speed)\n",
        spec.params
    );

    let mut world = spec.build_world();
    let mut agent = RipAgent::default();
    let mut engine = Episode::begin_untraced(&world, spec.episode_config());

    let mut frames = 0;
    loop {
        let u = agent.control(&world);
        let events = engine.step(&mut world, u);
        if (world.time() * 10.0).round() as i64 % 15 == 0 {
            frames += 1;
            println!(
                "t = {:.1} s  (E ego at {:.1} m/s, A ring vehicle)",
                world.time(),
                world.ego().v
            );
            println!("{}", render_world(&world, 25.0, 40.0, 1.4));
        }
        if events.ego_collided() {
            println!(
                "t = {:.1} s — COLLISION (RIP failed to yield-model the ring vehicle)",
                world.time()
            );
            println!("{}", render_world(&world, 25.0, 40.0, 1.4));
            break;
        }
        if engine.config().goal.reached(world.ego().position()) {
            println!(
                "t = {:.1} s — ego traversed the roundabout safely",
                world.time()
            );
            break;
        }
        if world.time() > engine.config().max_time || frames > 40 {
            println!("t = {:.1} s — episode ended without conflict", world.time());
            break;
        }
    }
}
