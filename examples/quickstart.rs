//! Quickstart: compute the Safety-Threat Indicator for a dangerous cut-in
//! moment and inspect which actor threatens the ego most.
//!
//! Run with: `cargo run --release --example quickstart`

use iprism::prelude::*;

fn main() {
    // A two-lane road; the ego cruises in the bottom lane at 10 m/s.
    let map = RoadMap::straight_road(2, 3.5, 400.0);
    let ego = VehicleState::new(100.0, 1.75, 0.0, 10.0);

    // Actor 1 has just cut in 16 m ahead and is braking (classic cut-in).
    let cut_in = Trajectory::from_states(
        Seconds::new(0.0),
        Seconds::new(0.25),
        (0..11)
            .map(|i| VehicleState::new(116.0 + 3.0 * 0.25 * i as f64, 1.75, 0.0, 3.0))
            .collect(),
    );
    // Actor 2 drives parallel in the adjacent lane (harmless).
    let parallel = Trajectory::from_states(
        Seconds::new(0.0),
        Seconds::new(0.25),
        (0..11)
            .map(|i| VehicleState::new(95.0 + 10.0 * 0.25 * i as f64, 5.25, 0.0, 10.0))
            .collect(),
    );

    let scene = SceneSnapshot::new(0.0, ego, (4.6, 2.0))
        .with_actor(SceneActor::new(ActorId(1), cut_in, 4.6, 2.0))
        .with_actor(SceneActor::new(ActorId(2), parallel, 4.6, 2.0));

    let evaluator = StiEvaluator::default();
    let sti = evaluator.evaluate(&map, &scene);

    println!(
        "escape-route volume with all actors: {:7.1} m²",
        sti.volume_all
    );
    println!(
        "escape-route volume without actors:  {:7.1} m²",
        sti.volume_empty
    );
    println!("combined STI:                        {:7.2}", sti.combined);
    for (id, value) in &sti.per_actor {
        println!("  actor #{:<2} STI = {value:.2}", id.0);
    }
    match sti.riskiest_actor() {
        Some((id, value)) => {
            println!("most safety-threatening actor: #{} (STI {value:.2})", id.0);
        }
        None => println!("no actor currently threatens the ego"),
    }
}
