//! §V-D style analysis: measure the STI distribution over benign,
//! real-world-like traffic and show its long tail — the reason NHTSA
//! pre-crash scenarios are out-of-distribution for models trained only on
//! such data.
//!
//! Run with: `cargo run --release --example argoverse_risk_analysis [-- EPISODES]`

use iprism::eval::{dataset_study, EvalConfig};
use iprism::scenarios::BenignTrafficConfig;

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let config = EvalConfig {
        instances: episodes,
        ..EvalConfig::default()
    };
    println!("analysing {episodes} benign traffic episodes...");
    let t0 = std::time::Instant::now();
    let study = dataset_study(&config, &BenignTrafficConfig::default());
    println!("done in {:?}\n", t0.elapsed());
    println!("{study}");

    println!("\ninterpretation:");
    println!(
        "  {:.0}% of per-actor STI samples are exactly zero — most actors",
        study.actor_zero_fraction * 100.0
    );
    println!("  in lawful traffic never constrain the ego's escape routes.");
    println!(
        "  High-risk moments live in the long tail (p99 = {:.2}), which is",
        study.actor_percentiles.p99
    );
    println!("  why NHTSA pre-crash typologies are OOD for data-driven ADSes.");
}
