//! Train a Safety-hazard Mitigation Controller with D-DQN and save its
//! weights to disk, then reload and sanity-check the policy.
//!
//! Run with: `cargo run --release --example train_smc [-- EPISODES [PATH]]`

use iprism::core::Smc;
use iprism::prelude::*;

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "smc_weights.json".to_string());

    // The lead-slowdown typology: a leader brakes hard in front of the ego.
    let spec = ScenarioSpec::new(Typology::LeadSlowdown, vec![14.0, 6.0, 20.0], 0);
    println!("training on {} for {episodes} episodes...", spec.typology);
    let trained = train_smc(
        vec![(spec.build_world(), spec.episode_config())],
        LbcAgent::default(),
        &SmcTrainConfig {
            episodes,
            ..SmcTrainConfig::default()
        },
    );

    let first = trained.episode_returns.first().copied().unwrap_or(0.0);
    let last = trained.episode_returns.last().copied().unwrap_or(0.0);
    println!("episode return: first {first:.1}, last {last:.1}");

    if let Err(e) = trained.smc.save(std::path::Path::new(&path)) {
        eprintln!("failed to save weights to {path}: {e}");
        std::process::exit(1);
    }
    println!("weights saved to {path}");

    // Reload and verify the policies agree.
    let mut reloaded = match Smc::load(std::path::Path::new(&path)) {
        Ok(smc) => smc,
        Err(e) => {
            eprintln!("failed to reload weights from {path}: {e}");
            std::process::exit(1);
        }
    };
    let world = spec.build_world();
    let mut original = trained.smc.clone();
    let a = iprism::agents::MitigationPolicy::decide(&mut original, &world);
    let b = iprism::agents::MitigationPolicy::decide(&mut reloaded, &world);
    assert_eq!(a, b, "reloaded policy must match");
    println!("reloaded policy decides: {a:?} (matches the trained policy)");
}
