//! Offline shim of `rayon`: the data-parallelism API subset used by the
//! iPrism workspace, implemented with `std::thread::scope`.
//!
//! The shim provides ordered parallel maps (`par_iter().map(f).collect()`),
//! explicitly sized thread pools (`ThreadPoolBuilder` / `ThreadPool::install`)
//! and `current_num_threads`. Semantics match the subset of real rayon the
//! workspace relies on:
//!
//! * **Ordered collection** — `collect()` returns results in input order
//!   regardless of which worker finished first, so parallel evaluation is
//!   bit-identical to the sequential path.
//! * **Pool-scoped parallelism** — inside `ThreadPool::install(op)`, parallel
//!   iterators use the pool's thread count; outside they use
//!   [`current_num_threads`].
//! * **Panic propagation** — a panicking job aborts the scope and re-raises
//!   on the caller, like rayon's `collect`.
//!
//! Unlike real rayon there is no global worker pool or work stealing: each
//! `collect` runs on short-lived scoped threads pulling indices off a shared
//! queue. For the coarse, millisecond-scale jobs iPrism fans out (one
//! reach-tube per job), scheduling overhead is negligible.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available,
    //! mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    /// Thread count installed by the innermost enclosing
    /// [`ThreadPool::install`]; 0 means "no pool installed".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel iterators use outside any
/// [`ThreadPool::install`]: the host's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|installed| {
        let n = installed.get();
        if n > 0 {
            n
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    })
}

/// Error returned by [`ThreadPoolBuilder::build`] (the shim never fails to
/// build; the type exists for API parity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicitly sized [`ThreadPool`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default thread count (host parallelism).
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count; 0 keeps the host-parallelism default.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: parallel iterators run with its thread count while
/// inside [`ThreadPool::install`].
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it executes, restoring the previous pool on exit (also on
    /// panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|installed| installed.set(self.0));
            }
        }
        let previous = INSTALLED_THREADS.with(|installed| {
            let previous = installed.get();
            installed.set(self.threads);
            previous
        });
        let _restore = Restore(previous);
        op()
    }
}

/// Conversion into a parallel iterator over owned items, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// Returns the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over `&T`, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type (`&'a T`).
    type Item: Send + 'a;
    /// Returns the borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A parallel iterator over a materialized item list.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (executed when the result is collected).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]: a pending ordered parallel map.
#[derive(Debug)]
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map on the installed pool and collects the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        ordered_parallel_map(self.items, current_num_threads(), &self.f)
            .into_iter()
            .collect()
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning the
/// results in input order. One worker (or one item) degenerates to a plain
/// sequential map with no thread spawned at all.
fn ordered_parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let next = AtomicUsize::new(0);
    let out = Mutex::new(&mut slots);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                // This *is* the ordered fan-in the flow lint steers everyone
                // else towards: the atomic only hands out work indices, and
                // every result lands in its input-index slot, so the output
                // is byte-identical at any thread count.
                // iprism-lint: allow(par-shared-mut)
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A poisoned lock means a sibling worker panicked; the scope
                // is about to propagate that panic, so this worker just stops.
                // iprism-lint: allow(par-shared-mut)
                let item = match queue[i].lock() {
                    Ok(mut slot) => slot.take(),
                    Err(_) => break,
                };
                let Some(item) = item else { break };
                let r = f(item);
                // Slot writes are index-addressed; order cannot leak out.
                // iprism-lint: allow(par-shared-mut)
                match out.lock() {
                    Ok(mut results) => results[i] = Some(r),
                    Err(_) => break,
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_collection_matches_sequential() {
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x).collect();
        let par: Vec<u64> = items.par_iter().map(|&x| x * x).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn into_par_iter_moves_items() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = items.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 20);
        assert_eq!(lens[0], 2);
        assert_eq!(lens[10], 3);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .map_err(|_| "build failed")
            .unwrap_or_else(|_| unreachable!("shim build is infallible"));
        assert_eq!(pool.current_num_threads(), 3);
        let (inside, nested, outside_after) = pool.install(|| {
            let inside = current_num_threads();
            let inner = ThreadPoolBuilder::new().num_threads(7).build();
            let nested = inner
                .map(|p| p.install(current_num_threads))
                .unwrap_or_default();
            (inside, nested, current_num_threads())
        });
        assert_eq!(inside, 3);
        assert_eq!(nested, 7);
        assert_eq!(outside_after, 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn pool_results_are_ordered_across_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build();
        let Ok(pool) = pool else {
            unreachable!("shim build is infallible")
        };
        let items: Vec<usize> = (0..64).collect();
        let out: Vec<usize> = pool.install(|| {
            items
                .par_iter()
                .map(|&i| {
                    // Stagger finish order so slot indexing is exercised.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((64 - i) % 7) as u64 * 10,
                    ));
                    i * 2
                })
                .collect()
        });
        assert_eq!(out, items.iter().map(|&i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
