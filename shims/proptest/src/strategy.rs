//! Strategy trait and combinators for the proptest shim.

use core::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::TestRng;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Sampling takes `&self` so strategies referenced by the `proptest!` macro
/// can be reused across cases; combinators consume `self`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like the real crate's
    /// `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        SizeRange { lo, hi: hi + 1 }
    }
}

/// The result of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Types with a canonical "anything goes" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary-value strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: core::marker::PhantomData,
    }
}
