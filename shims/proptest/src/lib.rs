//! Offline shim of `proptest`: deterministic randomized property testing.
//!
//! Provides the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! numeric-range / tuple / `prop_map` / `collection::vec` / `any::<T>()`
//! strategies — the subset this workspace's tests use. Unlike the real
//! crate there is no shrinking: failures report the failing case's values
//! through the assertion message and are reproducible because every run is
//! seeded deterministically (override the case count with the
//! `PROPTEST_CASES` environment variable).

use rand_chacha::rand_core::SeedableRng;

pub mod strategy;

/// `use proptest::prelude::*;` brings the macro and strategy surface in.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The RNG driving every test case.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Number of cases per property (default 64, `PROPTEST_CASES` overrides).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` once per case with a deterministic per-case RNG. Used by the
/// `proptest!` macro; not part of the public API surface mirrored from the
/// real crate.
pub fn run_cases(test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    // Seed differs per test so sibling properties explore different inputs,
    // but is stable across runs for reproducibility.
    let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for case in 0..case_count() {
        let mut rng = TestRng::seed_from_u64(name_hash ^ u64::from(case));
        body(&mut rng);
    }
}

/// Property-test entry point: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)*
                $body
            });
        }
    )*};
}

/// Asserts a property holds for the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the sampled case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 1usize..10, k in 0..=3u32) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(k <= 3);
        }

        #[test]
        fn dependent_strategies(n in 2usize..20, i in 0..2usize) {
            // The second strategy may reference the first binding.
            let j = i * n;
            prop_assert!(j < 2 * n);
        }

        #[test]
        fn tuples_and_map(p in (0.0..1.0f64, -1.0..0.0f64).prop_map(|(a, b)| a - b)) {
            prop_assert!(p > 0.0 && p < 2.0);
        }

        #[test]
        fn vec_strategy(xs in crate::collection::vec(0.0..1.0f64, 3..7), flag in any::<bool>()) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            let _ = flag;
        }

        #[test]
        fn fixed_len_vec(xs in crate::collection::vec(-1.0..1.0f64, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            first.push(Strategy::sample(&(0.0..1.0f64), rng));
        });
        crate::run_cases("determinism_probe", |rng| {
            second.push(Strategy::sample(&(0.0..1.0f64), rng));
        });
        assert_eq!(first, second);
        assert!(first.len() >= 32);
    }
}
