//! Offline shim of the `rand` 0.8 API subset used by this workspace.
//!
//! The build environment has no crates.io access, so this crate provides
//! the handful of items the workspace actually uses — `RngCore`,
//! `SeedableRng`, and `Rng::{gen_range, gen_bool}` over integer and float
//! ranges — with deterministic, seedable behaviour. It is **not** a
//! cryptographic or statistically rigorous RNG library; it exists so the
//! simulation stays seeded and reproducible without network access.

use core::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((u128::from(rng.next_u64()) << 64)
                    | u128::from(rng.next_u64()))
                    % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((u128::from(rng.next_u64()) << 64)
                    | u128::from(rng.next_u64()))
                    % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`, ints or floats).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// `rand_core`-compatible re-exports (`rand::rngs`-style layout is not
/// needed by this workspace).
pub mod rngs {
    pub use crate::SmallRng;
}

/// A small, fast deterministic generator (SplitMix64). Used as the default
/// engine where callers do not insist on ChaCha.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x: usize = r.gen_range(0..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let x: i32 = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
