//! Offline shim of `rand_chacha`: a real ChaCha8 keystream generator with
//! the `seed_from_u64` construction the workspace uses.
//!
//! Output is deterministic per seed but is not bit-compatible with the
//! upstream `rand_chacha` crate (seed expansion differs); the workspace
//! relies only on seeded determinism, never on upstream-exact streams.

use rand::{RngCore, SeedableRng};

/// `rand_core` re-exports, mirroring the upstream crate layout so
/// `use rand_chacha::rand_core::SeedableRng;` keeps working.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter, 2 nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    cursor: usize,
}

impl ChaCha8Rng {
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64, the
        // same expansion `rand_core` uses for `seed_from_u64`.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            let n: usize = r.gen_range(0..10);
            assert!(n < 10);
        }
    }

    #[test]
    fn stream_advances_past_one_block() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
