//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item's
//! token stream is walked directly, and the generated impls are emitted as
//! source strings targeting the sibling `serde` shim's value-tree model.
//!
//! Supported shapes — the full set this workspace uses:
//! * structs with named fields, including `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]` field attributes,
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics, lifetimes, and other serde attributes are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
    default_path: Option<String>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

fn expand(input: TokenStream, direction: Direction) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match direction {
            Direction::Serialize => gen_serialize(&item),
            Direction::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde shim codegen error: {e}\");")
            .parse()
            .unwrap_or_default()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);
    let kind = expect_any_ident(&tokens, &mut i)?;
    let name = expect_any_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct(name, fields))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream())?;
                Ok(Item::TupleStruct(name, arity))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct(name)),
            _ => Err(format!("serde shim: unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum(name, variants))
            }
            _ => Err(format!("serde shim: malformed enum `{name}`")),
        },
        other => Err(format!("serde shim: cannot derive for item kind `{other}`")),
    }
}

/// Skips `#[...]` attribute groups, returning an error only on stray `#`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => return Err("serde shim: malformed attribute".to_string()),
        }
    }
    Ok(())
}

/// Parses field/variant-level attributes, extracting `#[serde(...)]` info.
fn parse_field_attributes(
    tokens: &[TokenTree],
    i: &mut usize,
) -> Result<(bool, Option<String>), String> {
    let mut skip = false;
    let mut default_path = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let group = match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("serde shim: malformed attribute".to_string()),
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => return Err("serde shim: malformed #[serde(...)] attribute".to_string()),
        };
        let args: Vec<TokenTree> = args.into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            match &args[j] {
                TokenTree::Ident(id) if id.to_string() == "skip" => {
                    skip = true;
                    j += 1;
                }
                TokenTree::Ident(id) if id.to_string() == "default" => {
                    j += 1;
                    if !matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        return Err("serde shim: expected `default = \"path\"`".to_string());
                    }
                    j += 1;
                    match args.get(j) {
                        Some(TokenTree::Literal(lit)) => {
                            let raw = lit.to_string();
                            default_path = Some(raw.trim_matches('"').to_string());
                            j += 1;
                        }
                        _ => return Err("serde shim: expected string after `default =`".into()),
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                other => {
                    return Err(format!(
                        "serde shim: unsupported #[serde] argument `{other}`"
                    ))
                }
            }
        }
    }
    Ok((skip, default_path))
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_any_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde shim: expected identifier, got {other:?}")),
    }
}

/// Advances past one type, tracking `<`/`>` nesting so commas inside
/// generics do not terminate the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, default_path) = parse_field_attributes(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        let name = expect_any_ident(&tokens, &mut i)?;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("serde shim: expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type(&tokens, &mut i);
        // Now at a comma or end of stream.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default_path,
        });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant.
fn tuple_arity(stream: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (skip, _) = parse_field_attributes(&tokens, &mut i)?;
        if skip {
            return Err("serde shim: #[serde(skip)] on tuple fields is unsupported".into());
        }
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(arity)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, _) = parse_field_attributes(&tokens, &mut i)?;
        if skip {
            return Err("serde shim: #[serde(skip)] on variants is unsupported".into());
        }
        let name = expect_any_ident(&tokens, &mut i)?;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream())?;
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde shim: explicit discriminant on variant `{name}` is unsupported"
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let field = &f.name;
                pushes.push_str(&format!(
                    "entries.push(({field:?}.to_string(), ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(entries)\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}"
        ),
        Item::TupleStruct(name, arity) => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(vec![{items}]) }}\n}}"
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                let variant = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::Str({variant:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{variant}(f0) => ::serde::Value::Object(vec![({variant:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders = (0..*arity)
                            .map(|idx| format!("f{idx}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..*arity)
                            .map(|idx| format!("::serde::Serialize::to_value(f{idx})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{variant}({binders}) => ::serde::Value::Object(vec![({variant:?}.to_string(), ::serde::Value::Array(vec![{items}]))]),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                let field = &f.name;
                                format!(
                                    "({field:?}.to_string(), ::serde::Serialize::to_value({field}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {binders} }} => ::serde::Value::Object(vec![({variant:?}.to_string(), ::serde::Value::Object(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}"
            )
        }
    }
}

fn field_expr(owner: &str, f: &Field) -> String {
    let field = &f.name;
    if f.skip {
        match &f.default_path {
            Some(path) => format!("{field}: {path}(),\n"),
            None => format!("{field}: ::std::default::Default::default(),\n"),
        }
    } else {
        format!(
            "{field}: match source.get({field:?}) {{\n\
             Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             None => return Err(::serde::Error::custom(concat!(\"missing field `\", {field:?}, \"` in \", {owner:?}))),\n\
             }},\n"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let assigns: String = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(source: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if source.as_object().is_none() {{\n\
                 return Err(::serde::Error::expected(concat!(\"object for \", {name:?}), source));\n\
                 }}\n\
                 Ok({name} {{\n{assigns}}})\n\
                 }}\n}}"
            )
        }
        Item::TupleStruct(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(source: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             Ok({name}(::serde::Deserialize::from_value(source)?))\n\
             }}\n}}"
        ),
        Item::TupleStruct(name, arity) => {
            let items = (0..*arity)
                .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(source: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let items = source.as_array().ok_or_else(|| ::serde::Error::expected(concat!(\"array for \", {name:?}), source))?;\n\
                 if items.len() != {arity} {{\n\
                 return Err(::serde::Error::custom(concat!(\"wrong tuple arity for \", {name:?})));\n\
                 }}\n\
                 Ok({name}({items}))\n\
                 }}\n}}"
            )
        }
        Item::UnitStruct(name) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(source: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match source {{\n\
             ::serde::Value::Null => Ok({name}),\n\
             other => Err(::serde::Error::expected(concat!(\"null for unit struct \", {name:?}), other)),\n\
             }}\n\
             }}\n}}"
        ),
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let variant = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{variant:?} => Ok({name}::{variant}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{variant:?} => Ok({name}::{variant}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items = (0..*arity)
                            .map(|idx| format!("::serde::Deserialize::from_value(&items[{idx}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        data_arms.push_str(&format!(
                            "{variant:?} => {{\n\
                             let items = payload.as_array().ok_or_else(|| ::serde::Error::expected(\"variant tuple array\", payload))?;\n\
                             if items.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(concat!(\"wrong arity for variant \", {variant:?})));\n\
                             }}\n\
                             Ok({name}::{variant}({items}))\n\
                             }}\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let assigns: String = fields
                            .iter()
                            .map(|f| field_expr(variant, f).replace("source.get", "payload.get"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{variant:?} => {{\n\
                             if payload.as_object().is_none() {{\n\
                             return Err(::serde::Error::expected(\"variant object\", payload));\n\
                             }}\n\
                             Ok({name}::{variant} {{\n{assigns}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(source: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match source {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(concat!(\"unknown variant `{{}}` of \", {name:?}), other))),\n\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(::serde::Error::custom(format!(concat!(\"unknown variant `{{}}` of \", {name:?}), other))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::expected(concat!(\"enum value for \", {name:?}), other)),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    }
}
