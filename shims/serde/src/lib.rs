//! Offline shim of `serde`: a simplified value-tree serialization framework
//! with derive macros, sufficient for the JSON round-tripping this
//! workspace does.
//!
//! Design: instead of serde's visitor-based zero-copy data model, types
//! convert to and from a [`Value`] tree. `serde_json` (the sibling shim)
//! renders that tree to JSON text and parses it back. Numbers keep their
//! integer/float identity so round-trips are exact (floats use Rust's
//! shortest-roundtrip `Display`).

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// The standard "expected X, got Y" shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the shim data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the shim data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::Int(i) => i128::from(*i),
                    Value::UInt(u) => i128::from(*u),
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value)
            .and_then(|u| usize::try_from(u).map_err(|_| Error::custom("usize out of range")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|i| isize::try_from(i).map_err(|_| Error::custom("isize out of range")))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // Non-finite floats have no JSON representation; serialize
                // as null like serde_json does.
                if self.is_finite() {
                    Value::Float(f64::from(*self))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected array of length {N}, got {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::expected("tuple array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact comparisons are intentional in tests
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i32::from_value(&5i32.to_value()).unwrap(), 5);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = Deserialize::from_value(&vec![1.0, 2.0].to_value()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        let t: (u32, f64) = Deserialize::from_value(&(3u32, 0.5f64).to_value()).unwrap();
        assert_eq!(t, (3, 0.5));
        let o: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn errors_are_descriptive() {
        let err = bool::from_value(&Value::Int(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
    }
}
