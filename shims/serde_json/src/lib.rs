//! Offline shim of `serde_json`: renders the `serde` shim's [`Value`] tree
//! to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest-roundtrip `Display`, so every
//! finite `f64` survives `to_string` → `from_str` bit-exactly (the
//! behaviour the real crate's `float_roundtrip` feature guarantees).

use serde::{Deserialize, Serialize, Value};

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Error::new(err.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails for the value shapes the shim data model can express; the
/// `Result` mirrors the real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; see [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns a descriptive error when the text is not valid JSON or does not
/// match `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d);
            });
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, v), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, v, indent, d);
                },
            );
        }
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let len = items.len();
    for (idx, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
        if idx + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Shortest-roundtrip representation; exact on re-parse.
    out.push_str(&f.to_string());
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // accept lone BMP code points only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_exact() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            1e300,
            -2.5e-10,
            f64::MAX,
            f64::MIN_POSITIVE,
            123_456_789.123_456_79,
            0.0,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
    }

    #[test]
    fn integers_keep_identity() {
        let json = to_string(&u64::MAX).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, u64::MAX);
        let json = to_string(&i64::MIN).unwrap();
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, i64::MIN);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\none\ttab \"quoted\" back\\slash \u{1}control ünïcødé".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn nested_structures() {
        let value: Vec<(u32, f64)> = vec![(1, 0.5), (2, -3.25)];
        let json = to_string(&value).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn pretty_printing_parses_back() {
        let value: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }
}
