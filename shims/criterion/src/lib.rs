//! Offline shim of `criterion`: a minimal wall-clock benchmark harness with
//! the `criterion_group!`/`criterion_main!`/`benchmark_group` API this
//! workspace's benches use.
//!
//! Each benchmark warms up briefly, then runs timed batches for a fixed
//! measurement budget and reports the per-iteration mean and best batch.
//! There is no statistical analysis or HTML report — the point is that
//! `cargo bench` compiles, runs, and prints comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(120),
            measurement: Duration::from_millis(600),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Builds a harness configured from the process arguments, mirroring the
    /// real crate's CLI: `--test` (as in `cargo bench -- --test`) switches to
    /// smoke mode, where every routine runs exactly once, untimed — CI uses
    /// it to prove the benches still execute without paying for measurement.
    pub fn configured_from_args() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            ..Criterion::default()
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.to_string(), &mut routine);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut routine);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b: &mut Bencher| {
            routine(b, input);
        });
        self
    }

    /// Finishes the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// (total elapsed, iterations) per measured batch.
    batches: Vec<(Duration, u64)>,
    warmup: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated calls of `routine` (or, in `--test` smoke mode, runs
    /// it exactly once without timing).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std_black_box(routine());
            return;
        }
        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~20 batches inside the measurement budget.
        let batch_size = ((self.measurement.as_secs_f64() / 20.0 / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);

        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch_size {
                std_black_box(routine());
            }
            self.batches.push((start.elapsed(), batch_size));
        }
    }

    fn report(&self, label: &str) {
        if self.test_mode {
            println!("{label:<48} ok (test mode)");
            return;
        }
        if self.batches.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .batches
            .iter()
            .map(|(elapsed, iters)| elapsed.as_secs_f64() / *iters as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let best = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let total_iters: u64 = self.batches.iter().map(|(_, n)| n).sum();
        println!(
            "{label:<48} median {} best {} ({} iters)",
            format_time(median),
            format_time(best),
            total_iters
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, routine: &mut F) {
    let mut bencher = Bencher {
        batches: Vec::new(),
        warmup: criterion.warmup,
        measurement: criterion.measurement,
        test_mode: criterion.test_mode,
    };
    routine(&mut bencher);
    bencher.report(label);
}

/// Declares a benchmark group function, like the real crate's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, like the real crate's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::configured_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
            test_mode: false,
        };
        let mut group = c.benchmark_group("shim");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_routine_exactly_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
